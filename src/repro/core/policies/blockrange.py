"""Sub-file block-range migration (paper §5.2).

Database files are large, randomly and incompletely accessed, and
sometimes never overwritten; whole-file migration serves them poorly.
The paper proposes tracking *access ranges* within a file — one record
for a sequentially-read file, potentially one per block for a database —
so cold ranges can migrate while hot ranges stay.

:class:`AccessRangeTracker` is the "mechanism-supplied and updated records
of file access sequentiality" the paper calls for (it had "no clear
implementation strategy" in 1993 — this is ours): ranges merge when
accesses continue sequentially, split when a sub-range is re-touched, and
coalesce coarsest-first when a file exceeds its record budget, which is
exactly the dynamic-granularity tradeoff of §5.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.policies.base import MigrationPolicy, MigrationUnit
from repro.sim.actor import Actor


@dataclass
class AccessRange:
    """A half-open lbn range [start, end) and its last access time."""

    start: int
    end: int
    last_access: float

    def overlaps(self, start: int, end: int) -> bool:
        return self.start < end and start < self.end

    def __len__(self) -> int:
        return self.end - self.start


class AccessRangeTracker:
    """Per-file access-range records with a bounded per-file budget."""

    def __init__(self, max_records_per_file: int = 64) -> None:
        if max_records_per_file < 1:
            raise ValueError("need at least one record per file")
        self.max_records = max_records_per_file
        self._files: Dict[int, List[AccessRange]] = {}

    def record(self, inum: int, start_lbn: int, end_lbn: int,
               when: float) -> None:
        """Note an access to blocks [start_lbn, end_lbn)."""
        if end_lbn <= start_lbn:
            return
        ranges = self._files.setdefault(inum, [])
        # Carve the accessed span out of existing records.
        carved: List[AccessRange] = []
        for r in ranges:
            if not r.overlaps(start_lbn, end_lbn):
                carved.append(r)
                continue
            if r.start < start_lbn:
                carved.append(AccessRange(r.start, start_lbn, r.last_access))
            if r.end > end_lbn:
                carved.append(AccessRange(end_lbn, r.end, r.last_access))
        carved.append(AccessRange(start_lbn, end_lbn, when))
        carved.sort(key=lambda r: r.start)
        # Merge adjacent records with identical timestamps (sequential
        # reads collapse to a single record).
        merged: List[AccessRange] = []
        for r in carved:
            if (merged and merged[-1].end == r.start
                    and merged[-1].last_access == r.last_access):
                merged[-1].end = r.end
            else:
                merged.append(r)
        # Enforce the bookkeeping budget by coalescing the two adjacent
        # records whose timestamps differ least (coarser granularity,
        # smaller overhead — the §5.2 tradeoff).
        while len(merged) > self.max_records:
            best_i, best_gap = 0, float("inf")
            for i in range(len(merged) - 1):
                gap = abs(merged[i].last_access - merged[i + 1].last_access)
                if gap < best_gap:
                    best_i, best_gap = i, gap
            a, b = merged[best_i], merged[best_i + 1]
            merged[best_i] = AccessRange(a.start, b.end,
                                         max(a.last_access, b.last_access))
            del merged[best_i + 1]
        self._files[inum] = merged

    def ranges(self, inum: int) -> List[AccessRange]:
        return list(self._files.get(inum, []))

    def forget(self, inum: int) -> None:
        self._files.pop(inum, None)

    def tracked_files(self) -> List[int]:
        return list(self._files)


class BlockRangePolicy(MigrationPolicy):
    """Migrate cold block ranges of tracked files.

    For every tracked file, ranges older than ``min_age`` are selected
    (coldest first), letting "old, unreferenced data within a file migrate
    to tertiary storage while active data in the same file remain on
    secondary storage".
    """

    def __init__(self, tracker: AccessRangeTracker, target_bytes: int,
                 min_age: float, block_size: int = 4096) -> None:
        if target_bytes <= 0:
            raise ValueError("target_bytes must be positive")
        self.tracker = tracker
        self.target_bytes = target_bytes
        self.min_age = min_age
        self.block_size = block_size

    def select(self, fs, actor: Optional[Actor] = None) -> List[MigrationUnit]:
        actor = actor or fs.actor
        now = actor.time
        candidates: List[Tuple[float, int, AccessRange]] = []
        for inum in self.tracker.tracked_files():
            for r in self.tracker.ranges(inum):
                age = now - r.last_access
                if age >= self.min_age:
                    candidates.append((age, inum, r))
        candidates.sort(key=lambda item: item[0], reverse=True)
        out: List[MigrationUnit] = []
        total = 0
        for age, inum, r in candidates:
            if total >= self.target_bytes:
                break
            out.append(MigrationUnit(
                inums=[inum], tag=(inum, r.start, r.end), score=age,
                lbn_ranges={inum: (r.start, r.end)}))
            total += len(r) * self.block_size
        return out
