"""Policy plumbing: file inventory collection and the policy interface.

Policies are user-level code (the paper's migrator embodies them, §6.7):
they walk the namespace — which BSD allows without perturbing access
times (§5.3) — rank candidates, and hand the mechanism a list of
migration units.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.lfs.constants import UNASSIGNED
from repro.sim.actor import Actor


@dataclass
class FileFacts:
    """Attributes a policy ranks on (all available from the base LFS)."""

    inum: int
    path: str
    size: int
    atime: float
    mtime: float
    is_dir: bool
    #: True if at least the file's first mapped block is disk-resident
    #: (cheap probe for "not already migrated").
    disk_resident: bool


@dataclass
class MigrationUnit:
    """A policy's output: files (or block ranges) to migrate together.

    Files in one unit are staged consecutively, so they cluster into the
    same tertiary segment stream — the paper's namespace-locality layout.
    ``tag`` identifies the unit in the migrator's hint table for
    unit-granular prefetch on a later cache miss.
    """

    inums: List[int]
    tag: object = None
    score: float = 0.0
    #: inum -> (first lbn, last lbn + 1) for sub-file migration; whole
    #: files are migrated when an inum has no entry.
    lbn_ranges: Dict[int, Tuple[int, int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.inums:
            raise ValueError("a migration unit needs at least one file")


def collect_file_facts(fs, actor: Optional[Actor] = None,
                       root: str = "/",
                       include_dirs: bool = False) -> List[FileFacts]:
    """Walk the tree collecting ranking inputs, without touching atimes."""
    actor = actor or fs.actor
    pinned = getattr(fs, "pinned_inums", frozenset())
    facts: List[FileFacts] = []
    stack = [(root.rstrip("/") or "/", fs.lookup(root, actor))]
    while stack:
        path, inum = stack.pop()
        if inum in pinned:
            continue  # special files always remain on disk (paper §6.4)
        ino = fs.get_inode(inum, actor)
        if ino.is_dir():
            if include_dirs and path != "/":
                facts.append(_facts_for(fs, actor, path, ino))
            for name in fs.readdir(path, actor):
                child = path.rstrip("/") + "/" + name
                stack.append((child, fs.lookup(child, actor)))
        else:
            facts.append(_facts_for(fs, actor, path, ino))
    return facts


def _facts_for(fs, actor: Actor, path: str, ino) -> FileFacts:
    resident = False
    if ino.size > 0:
        daddr = fs.bmap(ino, 0, actor)
        if daddr != UNASSIGNED:
            resident = fs.aspace.is_disk_daddr(daddr) if hasattr(
                fs, "aspace") else True
    return FileFacts(inum=ino.inum, path=path, size=ino.size,
                     atime=ino.atime, mtime=ino.mtime,
                     is_dir=ino.is_dir(), disk_resident=resident)


class MigrationPolicy(ABC):
    """Chooses what to migrate; the mechanism does the moving."""

    @abstractmethod
    def select(self, fs, actor: Optional[Actor] = None) -> List[MigrationUnit]:
        """Return migration units in priority order."""

    @staticmethod
    def take_until(ranked: List[Tuple[float, FileFacts]],
                   target_bytes: int) -> List[FileFacts]:
        """Greedy prefix of a descending-scored ranking filling a byte goal."""
        chosen: List[FileFacts] = []
        total = 0
        for _score, facts in ranked:
            if total >= target_bytes:
                break
            chosen.append(facts)
            total += facts.size
        return chosen
