"""Cache-line ejection policies (paper §5.4 and §10).

"Cache flushing could be handled by any of the standard policies: LRU,
random, working-set observations, etc."  The Future Work section adds a
nearly-MRU hybrid: freshly fetched segments are designated "least worthy"
and ejected first, unless a repeat access promotes them into the regular
pool — approximating cache-bypass for one-shot reads.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import List, Optional, Set

from repro.util.lru import LRUTracker


class EjectionPolicy(ABC):
    """Chooses which cached tertiary segment to eject."""

    @abstractmethod
    def choose_victim(self, candidates: List[int]) -> Optional[int]:
        """Pick one of ``candidates`` (tertiary segnos) to eject."""

    def on_insert(self, tsegno: int, fresh_fetch: bool) -> None:
        """A line was registered (fetch or staging)."""

    def on_access(self, tsegno: int) -> None:
        """A cached line satisfied a read."""

    def on_evict(self, tsegno: int) -> None:
        """A line left the cache."""


class LRUEjection(EjectionPolicy):
    """Eject the least-recently-used line."""

    def __init__(self) -> None:
        self._lru: LRUTracker[int] = LRUTracker()

    def on_insert(self, tsegno: int, fresh_fetch: bool) -> None:
        self._lru.touch(tsegno)

    def on_access(self, tsegno: int) -> None:
        self._lru.touch(tsegno)

    def on_evict(self, tsegno: int) -> None:
        self._lru.discard(tsegno)

    def choose_victim(self, candidates: List[int]) -> Optional[int]:
        allowed = set(candidates)
        for tsegno in self._lru:
            if tsegno in allowed:
                return tsegno
        return candidates[0] if candidates else None


class RandomEjection(EjectionPolicy):
    """Eject a uniformly random line (seeded for reproducibility)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def choose_victim(self, candidates: List[int]) -> Optional[int]:
        if not candidates:
            return None
        return self._rng.choice(sorted(candidates))


class LeastWorthyEjection(EjectionPolicy):
    """The Future Work nearly-MRU hybrid (paper §10).

    Fresh fetches enter a "least worthy" set ejected before anything else;
    a second access promotes a line into a regular LRU pool.  This keeps a
    one-time sequential sweep over tertiary data from flushing the whole
    cache.
    """

    def __init__(self) -> None:
        self._lru: LRUTracker[int] = LRUTracker()
        self._least_worthy: Set[int] = set()
        self._seen_once: Set[int] = set()

    def on_insert(self, tsegno: int, fresh_fetch: bool) -> None:
        self._lru.touch(tsegno)
        if fresh_fetch:
            self._least_worthy.add(tsegno)
            self._seen_once.discard(tsegno)

    def on_access(self, tsegno: int) -> None:
        self._lru.touch(tsegno)
        if tsegno in self._least_worthy:
            # First access is the demand fetch's own read; the second
            # proves reuse and earns promotion to the regular pool.
            if tsegno in self._seen_once:
                self._least_worthy.discard(tsegno)
                self._seen_once.discard(tsegno)
            else:
                self._seen_once.add(tsegno)

    def on_evict(self, tsegno: int) -> None:
        self._lru.discard(tsegno)
        self._least_worthy.discard(tsegno)
        self._seen_once.discard(tsegno)

    def choose_victim(self, candidates: List[int]) -> Optional[int]:
        allowed = set(candidates)
        # Least-worthy lines first, oldest first.
        for tsegno in self._lru:
            if tsegno in allowed and tsegno in self._least_worthy:
                return tsegno
        for tsegno in self._lru:
            if tsegno in allowed:
                return tsegno
        return candidates[0] if candidates else None
