"""Migration and cache-management policies (paper §5).

Writing side (choosing what to send to tertiary storage):

* :class:`~repro.core.policies.stp.STPPolicy` — space-time product,
  the ranking the current migrator actually uses (exponents 1/1, §5.1);
* :class:`~repro.core.policies.access_time.AccessTimePolicy` — pure
  time-since-last-access ranking (§5.1's strawman);
* :class:`~repro.core.policies.namespace.NamespacePolicy` — directory
  subtrees as migration units with unitsize-time ranking (§5.3);
* :class:`~repro.core.policies.blockrange.BlockRangePolicy` — sub-file
  block-range migration driven by access-range tracking (§5.2).

Caching side (§5.4): ejection policies in
:mod:`~repro.core.policies.ejection` (LRU, random, and the Future Work
"least-worthy first" nearly-MRU hybrid).
"""

from repro.core.policies.base import (MigrationPolicy, MigrationUnit,
                                      FileFacts, collect_file_facts)
from repro.core.policies.stp import STPPolicy
from repro.core.policies.access_time import AccessTimePolicy
from repro.core.policies.namespace import NamespacePolicy
from repro.core.policies.blockrange import BlockRangePolicy, AccessRangeTracker
from repro.core.policies.ejection import (EjectionPolicy, LRUEjection,
                                          RandomEjection, LeastWorthyEjection)

__all__ = [
    "MigrationPolicy", "MigrationUnit", "FileFacts", "collect_file_facts",
    "STPPolicy", "AccessTimePolicy", "NamespacePolicy", "BlockRangePolicy",
    "AccessRangeTracker",
    "EjectionPolicy", "LRUEjection", "RandomEjection", "LeastWorthyEjection",
]
