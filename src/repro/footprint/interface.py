"""The abstract Footprint API.

HighLight sees tertiary storage as "an array of devices each holding an
array of media volumes, each of which contains an array of segments"
(paper §6.5).  Footprint exposes exactly that: volume inventory and
capacities, plus block-addressed reads and writes within a volume.  The
paper notes the interface "could be implemented by an RPC system" to put
the jukebox on another machine; the abstraction boundary here is drawn so
that would be a drop-in replacement.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import List

from repro.blockdev.datapath import (Buffer, ExtentRef, materialize_refs,
                                     ref_of)
from repro.faults.health import VolumeHealth
from repro.sim.actor import Actor


@dataclass(frozen=True)
class VolumeInfo:
    """What Footprint publishes about one volume."""

    volume_id: int
    capacity_blocks: int        # nominal
    effective_capacity_blocks: int  # what the device expects to really fit
    block_size: int
    write_once: bool
    marked_full: bool
    #: Device-health state (see docs/FAULTS.md); implementations without
    #: a health model report ONLINE.
    health: VolumeHealth = VolumeHealth.ONLINE


class FootprintInterface(ABC):
    """Segment/block-granular access to robotic tertiary storage."""

    @abstractmethod
    def volumes(self) -> List[VolumeInfo]:
        """Inventory of all volumes this Footprint instance controls."""

    @abstractmethod
    def volume_info(self, volume_id: int) -> VolumeInfo:
        """Metadata for one volume."""

    @abstractmethod
    def read(self, actor: Actor, volume_id: int, blkno: int,
             nblocks: int) -> bytes:
        """Read blocks from a volume, loading it into a drive if needed."""

    @abstractmethod
    def write(self, actor: Actor, volume_id: int, blkno: int,
              data: Buffer) -> None:
        """Write blocks to a volume.

        Raises :class:`repro.errors.EndOfMedium` if the volume fills; the
        caller (HighLight's I/O server) marks the volume full and re-issues
        the segment on the next volume.
        """

    def read_refs(self, actor: Actor, volume_id: int, blkno: int,
                  nblocks: int) -> List[ExtentRef]:
        """Zero-copy read: borrowed ranges instead of joined bytes.

        The default wraps :meth:`read` so alternative Footprint
        implementations (fakes, RPC shims) keep working; the jukebox
        implementation overrides it with a store-native version whose
        virtual timing matches :meth:`read` exactly.
        """
        return [ref_of(self.read(actor, volume_id, blkno, nblocks))]

    def write_refs(self, actor: Actor, volume_id: int, blkno: int,
                   refs: List[ExtentRef]) -> None:
        """Zero-copy write of borrowed ranges; the caller must not mutate
        the ranges afterwards.  Same EndOfMedium contract as
        :meth:`write`."""
        self.write(actor, volume_id, blkno, materialize_refs(refs))

    @abstractmethod
    def mark_full(self, volume_id: int) -> None:
        """Record that a volume hit end-of-medium."""

    @abstractmethod
    def pin_write_drive(self, volume_id: int) -> None:
        """Dedicate a drive to the currently-active writing volume.

        Mirrors the paper's test configuration: "one drive was allocated
        for the currently-active writing segment, and the other for
        reading other platters."
        """
