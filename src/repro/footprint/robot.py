"""Footprint implementation over the jukebox simulators."""

from __future__ import annotations

from typing import List, Optional

from repro import obs
from repro.blockdev.datapath import (Buffer, ExtentRef, ref_of,
                                     refs_nbytes)
from repro.blockdev.jukebox import Jukebox
from repro.errors import NoSuchVolume
from repro.footprint.interface import FootprintInterface, VolumeInfo
from repro.sim.actor import Actor


class JukeboxFootprint(FootprintInterface):
    """Drives a :class:`~repro.blockdev.jukebox.Jukebox` behind the
    Footprint API.

    Implements the paper's drive-allocation policy: one drive may be pinned
    to the active writing volume; reads for *other* volumes go to the
    remaining drives, but reads that hit the writing volume are served by
    the writing drive itself ("the writing drive also fulfilled any read
    requests for its platter").
    """

    def __init__(self, jukebox: Jukebox) -> None:
        self.jukebox = jukebox
        self._write_drive: Optional[int] = None
        self._write_volume: Optional[int] = None
        #: Optional :class:`repro.faults.FaultInjector` consulted before
        #: each I/O reaches a drive (media/timeout/slow-I/O injection).
        self.fault_injector = None
        #: Optional ``(volume_id, blkno, refs)`` callback fired after each
        #: *successful* write — ``repro.persist`` folds the scrub CRC
        #: ledger over the data as it goes by.  A failed or torn write
        #: never reaches the observer, so a stale ledger entry is exactly
        #: the scrubber's detection signal.  Pure host computation: no
        #: virtual time, no events.
        self.write_observer = None

    # -- inventory ----------------------------------------------------------

    def _info(self, volume_id: int) -> VolumeInfo:
        vol = self.jukebox.volume(volume_id)
        return VolumeInfo(
            volume_id=vol.volume_id,
            capacity_blocks=vol.capacity_blocks,
            effective_capacity_blocks=vol.effective_capacity_blocks,
            block_size=vol.block_size,
            write_once=vol.write_once,
            marked_full=vol.marked_full,
            health=vol.health,
        )

    def volumes(self) -> List[VolumeInfo]:
        return [self._info(vid) for vid in sorted(self.jukebox.volumes)]

    def volume_info(self, volume_id: int) -> VolumeInfo:
        return self._info(volume_id)

    # -- drive policy ---------------------------------------------------------

    def pin_write_drive(self, volume_id: int) -> None:
        if volume_id not in self.jukebox.volumes:
            raise NoSuchVolume(f"no volume {volume_id}")
        if self._write_drive is not None:
            self.jukebox.drives[self._write_drive].pinned = False
        self._write_volume = volume_id
        self._write_drive = None  # lazily bound on the first write
        obs.counter("footprint_write_drive_pins_total",
                    "write-drive reassignments to a new volume").inc()

    def _drive_for(self, actor: Actor, volume_id: int,
                   is_write: bool) -> int:
        if volume_id == self._write_volume:
            if self._write_drive is None:
                self._write_drive = self.jukebox.load(actor, volume_id)
                self.jukebox.drives[self._write_drive].pinned = True
            return self.jukebox.load(actor, volume_id, self._write_drive)
        return self.jukebox.load(actor, volume_id)

    # -- I/O ----------------------------------------------------------------

    def _inject(self, actor: Actor, op: str, volume_id: int, blkno: int,
                nblocks: int) -> None:
        if self.fault_injector is not None:
            self.fault_injector.on_io(actor, op, volume_id, blkno, nblocks)

    def read(self, actor: Actor, volume_id: int, blkno: int,
             nblocks: int) -> bytes:
        t0 = actor.time
        idx = self._drive_for(actor, volume_id, is_write=False)
        self._inject(actor, "read", volume_id, blkno, nblocks)
        data = self.jukebox.drives[idx].read(actor, blkno, nblocks)
        self._account("read", len(data), actor.time - t0)
        return data

    def write(self, actor: Actor, volume_id: int, blkno: int,
              data: Buffer) -> None:
        t0 = actor.time
        idx = self._drive_for(actor, volume_id, is_write=True)
        self._inject(actor, "write", volume_id, blkno,
                     len(data) // (self.jukebox.volume(volume_id).block_size
                                   or 1))
        self.jukebox.drives[idx].write(actor, blkno, data)
        self._account("write", len(data), actor.time - t0)
        if self.write_observer is not None:
            self.write_observer(volume_id, blkno, [ref_of(data)])

    def read_refs(self, actor: Actor, volume_id: int, blkno: int,
                  nblocks: int) -> List[ExtentRef]:
        t0 = actor.time
        idx = self._drive_for(actor, volume_id, is_write=False)
        self._inject(actor, "read", volume_id, blkno, nblocks)
        refs = self.jukebox.drives[idx].read_refs(actor, blkno, nblocks)
        self._account("read", refs_nbytes(refs), actor.time - t0)
        return refs

    def write_refs(self, actor: Actor, volume_id: int, blkno: int,
                   refs: List[ExtentRef]) -> None:
        t0 = actor.time
        idx = self._drive_for(actor, volume_id, is_write=True)
        self._inject(actor, "write", volume_id, blkno,
                     refs_nbytes(refs)
                     // (self.jukebox.volume(volume_id).block_size or 1))
        observed = None
        if self.write_observer is not None:
            # Capture windows while the borrow is still live: the drive's
            # write_refs adopts (moves) the refs, and viewing a moved ref
            # is a borrow-sanitizer trap.  Views taken now stay valid —
            # extent buffers are never mutated in place — and the observer
            # still only fires after the write succeeds.
            observed = [ExtentRef(r.view(), 0, r.nbytes) for r in refs]
        self.jukebox.drives[idx].write_refs(actor, blkno, refs)
        self._account("write", refs_nbytes(refs), actor.time - t0)
        if self.write_observer is not None:
            self.write_observer(volume_id, blkno, observed)

    @staticmethod
    def _account(op: str, nbytes: int, seconds: float) -> None:
        obs.counter("footprint_ops_total", "Footprint API calls served",
                    ("op",)).labels(op=op).inc()
        obs.counter("footprint_bytes_total",
                    "bytes moved through the Footprint API",
                    ("op",)).labels(op=op).inc(nbytes)
        obs.histogram("footprint_op_seconds",
                      "virtual seconds per Footprint op (incl. media loads)",
                      ("op",)).labels(op=op).observe(seconds)

    def mark_full(self, volume_id: int) -> None:
        self.jukebox.volume(volume_id).marked_full = True
        obs.counter("footprint_volumes_marked_full_total",
                    "volumes that hit end-of-medium").inc()
