"""Footprint: Sequoia's abstract robotic-storage interface.

The paper accesses all tertiary devices through "Footprint", a generic
robotic storage interface that knows volume capacities but hides device
detail, so HighLight works unchanged over the MO changer, the Metrum tape
robot, or the Sony WORM jukebox.  This package is that abstraction: a
segment-granular volume API plus an implementation over the jukebox
simulators.
"""

from repro.footprint.interface import FootprintInterface, VolumeInfo
from repro.footprint.robot import JukeboxFootprint

__all__ = ["FootprintInterface", "VolumeInfo", "JukeboxFootprint"]
