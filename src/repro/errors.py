"""Exception hierarchy for the HighLight reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate between filesystem-level, device-level, and
policy-level faults.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Device layer
# --------------------------------------------------------------------------

class DeviceError(ReproError):
    """Base class for block-device faults."""


class AddressError(DeviceError):
    """A block address fell outside every device, or inside the dead zone."""


class EndOfMedium(DeviceError):
    """A write ran past the physical end of a tertiary volume.

    HighLight handles this by marking the volume full and re-writing the
    partially-written segment onto the next volume (paper section 6.3).
    """


class VolumeNotLoaded(DeviceError):
    """An I/O was issued to a jukebox volume that is not in any drive."""


class NoSuchVolume(DeviceError):
    """A volume identifier does not exist in the jukebox."""


class DriveBusy(DeviceError):
    """All drives in a jukebox are pinned and none can be reallocated."""


class MediaFailure(DeviceError):
    """Injected media failure (used by fault-injection tests)."""


class ReadOnlyMedium(DeviceError):
    """A write was issued to a write-once (WORM) region that already holds data."""


# --------------------------------------------------------------------------
# Filesystem layer
# --------------------------------------------------------------------------

class FilesystemError(ReproError):
    """Base class for filesystem faults."""


class NoSpace(FilesystemError):
    """The log ran out of clean segments (ENOSPC analogue)."""


class FileNotFound(FilesystemError):
    """Path or inode lookup failed (ENOENT analogue)."""


class FileExists(FilesystemError):
    """Attempt to create an entry that already exists (EEXIST analogue)."""


class NotADirectory(FilesystemError):
    """Path component was not a directory (ENOTDIR analogue)."""


class IsADirectory(FilesystemError):
    """File operation applied to a directory (EISDIR analogue)."""


class DirectoryNotEmpty(FilesystemError):
    """rmdir of a non-empty directory (ENOTEMPTY analogue)."""


class InvalidArgument(FilesystemError):
    """Malformed request (EINVAL analogue)."""


class ChecksumError(FilesystemError):
    """A summary or data checksum failed verification during recovery."""


class CorruptFilesystem(FilesystemError):
    """On-media structures are inconsistent beyond recovery."""


# --------------------------------------------------------------------------
# HighLight / migration layer
# --------------------------------------------------------------------------

class MigrationError(ReproError):
    """Base class for migration pipeline faults."""


class CacheMiss(MigrationError):
    """Internal signal: a tertiary block has no disk-cached copy."""


class StagingFull(MigrationError):
    """No disk segment is available to host a new staging segment."""


class TertiaryExhausted(MigrationError):
    """All tertiary volumes are full and no cleaner has reclaimed space."""


# --------------------------------------------------------------------------
# Tertiary request scheduler
# --------------------------------------------------------------------------

class SchedulerError(ReproError):
    """Base class for tertiary request-scheduler faults."""


class AccountingViolation(SchedulerError):
    """A scheduled request's wait + service time failed to land in the
    Table 4 categories.

    The scheduler charges queue wait to ``queuing`` and requires the
    request's execution to charge every remaining virtual second to
    exactly one category, so Table 4's partition invariant holds on the
    scheduled path too.
    """
