"""Exception hierarchy for the HighLight reproduction.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures with a single ``except`` clause while still being
able to discriminate between filesystem-level, device-level, and
policy-level faults.
"""

from __future__ import annotations

from typing import Optional


class ReproError(Exception):
    """Base class for all errors raised by this library."""


# --------------------------------------------------------------------------
# Device layer
# --------------------------------------------------------------------------

class DeviceError(ReproError):
    """Base class for block-device faults.

    Carries structured context so recovery code (``repro.faults``) can
    act — retry, quarantine, re-stage — without parsing message strings:
    ``volume_id`` names the tertiary volume involved (None for plain
    disks), ``blkno`` the first block of the failed transfer, and
    ``attempt`` the retry attempt that raised (stamped by
    :class:`repro.faults.RetryPolicy`).
    """

    def __init__(self, message: str = "", *,
                 volume_id: Optional[int] = None,
                 blkno: Optional[int] = None,
                 attempt: Optional[int] = None) -> None:
        super().__init__(message)
        self.volume_id = volume_id
        self.blkno = blkno
        self.attempt = attempt

    def _context(self) -> str:
        parts = []
        if self.volume_id is not None:
            parts.append(f"volume={self.volume_id}")
        if self.blkno is not None:
            parts.append(f"blkno={self.blkno}")
        if self.attempt is not None:
            parts.append(f"attempt={self.attempt}")
        return " ".join(parts)

    def __str__(self) -> str:
        base = super().__str__()
        ctx = self._context()
        if not ctx:
            return base
        return f"{base} [{ctx}]" if base else f"[{ctx}]"

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({super().__str__()!r}, "
                f"volume_id={self.volume_id!r}, blkno={self.blkno!r}, "
                f"attempt={self.attempt!r})")


class TransientDeviceError(DeviceError):
    """A device fault expected to clear on retry (dirty head, dropped
    SCSI transaction, picker mis-grab).  :class:`repro.faults.RetryPolicy`
    retries these with bounded exponential backoff; every other
    :class:`DeviceError` propagates immediately."""


class PermanentDeviceError(DeviceError):
    """A device fault retries cannot fix (destroyed medium, dead drive).

    Recovery means giving up on the copy: quarantine the volume, serve
    reads from a replica, re-stage write-outs onto a healthy volume.
    """


class AddressError(DeviceError):
    """A block address fell outside every device, or inside the dead zone."""


class EndOfMedium(DeviceError):
    """A write ran past the physical end of a tertiary volume.

    HighLight handles this by marking the volume full and re-writing the
    partially-written segment onto the next volume (paper section 6.3).
    """


class VolumeNotLoaded(DeviceError):
    """An I/O was issued to a jukebox volume that is not in any drive."""


class NoSuchVolume(DeviceError):
    """A volume identifier does not exist in the jukebox."""


class DriveBusy(DeviceError):
    """All drives in a jukebox are pinned and none can be reallocated."""


class MediaFailure(PermanentDeviceError):
    """The medium is unreadable for good (injected or declared after a
    retry policy exhausted itself)."""


class TransientMediaError(TransientDeviceError):
    """A single read/write failed but the medium is believed healthy."""


class MountFailure(TransientDeviceError):
    """The robot failed to seat a volume in a drive (picker slip)."""


class DriveTimeout(TransientDeviceError):
    """A drive stopped responding mid-operation and the request timed out."""


class ReadOnlyMedium(DeviceError):
    """A write was issued to a write-once (WORM) region that already holds data."""


# --------------------------------------------------------------------------
# Filesystem layer
# --------------------------------------------------------------------------

class FilesystemError(ReproError):
    """Base class for filesystem faults."""


class NoSpace(FilesystemError):
    """The log ran out of clean segments (ENOSPC analogue)."""


class FileNotFound(FilesystemError):
    """Path or inode lookup failed (ENOENT analogue)."""


class FileExists(FilesystemError):
    """Attempt to create an entry that already exists (EEXIST analogue)."""


class NotADirectory(FilesystemError):
    """Path component was not a directory (ENOTDIR analogue)."""


class IsADirectory(FilesystemError):
    """File operation applied to a directory (EISDIR analogue)."""


class DirectoryNotEmpty(FilesystemError):
    """rmdir of a non-empty directory (ENOTEMPTY analogue)."""


class InvalidArgument(FilesystemError):
    """Malformed request (EINVAL analogue)."""


class ChecksumError(FilesystemError):
    """A summary or data checksum failed verification during recovery."""


class CorruptFilesystem(FilesystemError):
    """On-media structures are inconsistent beyond recovery."""


# --------------------------------------------------------------------------
# HighLight / migration layer
# --------------------------------------------------------------------------

class MigrationError(ReproError):
    """Base class for migration pipeline faults."""


class CacheMiss(MigrationError):
    """Internal signal: a tertiary block has no disk-cached copy."""


class StagingFull(MigrationError):
    """No disk segment is available to host a new staging segment."""


class TertiaryExhausted(MigrationError):
    """All tertiary volumes are full and no cleaner has reclaimed space."""


# --------------------------------------------------------------------------
# Client front end (repro.frontend)
# --------------------------------------------------------------------------

class FrontendError(ReproError):
    """Base class for client/session front-end faults."""


class HandleClosed(FrontendError):
    """A closed (or never-opened) handle was used: double close,
    read-after-close, or a stale file descriptor."""


class AdmissionRejected(FrontendError):
    """A tenant request was refused by admission control.

    Raised when a tenant exceeds a hard cap in its
    :class:`~repro.frontend.TenantBudget` — open handles, or queued
    background work of a droppable class.  Rate-limited *data* requests
    are never rejected: the token bucket paces them in virtual time
    instead.
    """


class UnknownTenant(FrontendError):
    """An operation named a tenant the client has not registered."""


# --------------------------------------------------------------------------
# Tertiary request scheduler
# --------------------------------------------------------------------------

class SchedulerError(ReproError):
    """Base class for tertiary request-scheduler faults."""


class AccountingViolation(SchedulerError):
    """A scheduled request's wait + service time failed to land in the
    Table 4 categories.

    The scheduler charges queue wait to ``queuing`` and requires the
    request's execution to charge every remaining virtual second to
    exactly one category, so Table 4's partition invariant holds on the
    scheduled path too.
    """
