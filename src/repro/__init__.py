"""HighLight: a log-structured file system for tertiary storage management.

A complete reproduction of John T. Kohl's USENIX Winter 1993 paper
(UC Berkeley, Project Sequoia 2000), implemented from scratch in Python
over calibrated device simulators.

Package map
-----------

``repro.sim``
    Deterministic virtual-time kernel (actors, timeline resources,
    scheduler) replacing the paper's kernel/user-process concurrency.
``repro.blockdev``
    Data-bearing device models calibrated to the paper's Table 5:
    RZ57/RZ58/HP7958A disks, the HP 6300 MO changer, Metrum tape and
    Sony WORM jukeboxes, SCSI buses.
``repro.footprint``
    Sequoia's abstract robotic-storage interface.
``repro.lfs``
    The 4.4BSD LFS substrate: segmented log, ifile, inodes, directories,
    buffer cache, segment writer, cleaner, checkpoints, roll-forward
    recovery, and a consistency checker.
``repro.ffs``
    The clustered-FFS baseline used in Tables 2-3.
``repro.core``
    HighLight itself: the unified block address space, block-map driver,
    segment cache, tsegfile, staging segments, migrator, service and I/O
    processes, the migration-policy zoo, and the future-work extensions
    (tertiary cleaner, delayed write-out, replicas, adaptive cache
    sizing, automigration daemon).
``repro.workloads``
    Workload generators (the large-object benchmark, archival traces,
    project trees, checkpoints, database page mixes).
``repro.frontend``
    The multi-tenant session layer: one ``Client`` API (handles,
    per-tenant budgets, token-bucket admission) over interchangeable
    single-node and cluster backends, plus the seeded workload
    generator and SLO engine behind the ``frontend`` bench scenario.
``repro.bench``
    Testbed construction and runners regenerating every paper table and
    figure (``python -m repro.bench``).

Quickstart
----------

>>> from repro.bench import harness
>>> bed = harness.make_highlight()
>>> harness.preload_write_volume(bed)
>>> _ = bed.fs.write_path("/hello", b"tertiary-bound bytes")
>>> bed.fs.checkpoint()
>>> bed.app.sleep(3600)
>>> _ = bed.migrator.migrate_file("/hello")
>>> _ = bed.migrator.flush()
>>> bed.fs.read_path("/hello")
b'tertiary-bound bytes'
"""

__version__ = "1.0.0"

#: Curated re-exports: the assembled filesystem, the migrator, the
#: policy zoo, and the fault/recovery subsystem are importable straight
#: from ``repro`` (resolved lazily via PEP 562 so importing ``repro``
#: stays cheap and cycle-free — nearly every submodule does
#: ``from repro import obs`` at import time).
_EXPORTS = {
    # the assembled filesystem
    "HighLightFS": "repro.core.highlight",
    "HighLightConfig": "repro.core.highlight",
    # migration machinery
    "Migrator": "repro.core.migrator",
    "MigrationPipeline": "repro.core.migrator",
    "ReplicaManager": "repro.core.replicas",
    # the policy zoo
    "STPPolicy": "repro.core.policies",
    "AccessTimePolicy": "repro.core.policies",
    "NamespacePolicy": "repro.core.policies",
    "BlockRangePolicy": "repro.core.policies",
    "AccessRangeTracker": "repro.core.policies",
    "LRUEjection": "repro.core.policies",
    "RandomEjection": "repro.core.policies",
    "LeastWorthyEjection": "repro.core.policies",
    # the multi-tenant session front end
    "Client": "repro.frontend",
    "TenantBudget": "repro.frontend",
    "open_node": "repro.frontend",
    "open_cluster": "repro.frontend",
    # fault injection & recovery
    "FaultPlan": "repro.faults",
    "FaultSpec": "repro.faults",
    "FaultInjector": "repro.faults",
    "FaultManager": "repro.faults",
    "RetryPolicy": "repro.faults",
    "RetryClassPolicy": "repro.faults",
    "RepairDaemon": "repro.faults",
    "VolumeHealth": "repro.faults",
    "HealthRegistry": "repro.faults",
}

__all__ = sorted(_EXPORTS) + [
    "sim", "blockdev", "footprint", "faults", "frontend", "lfs", "ffs",
    "core", "workloads", "bench", "errors", "obs", "util",
]


def __getattr__(name: str):
    module = _EXPORTS.get(name)
    if module is None:
        raise AttributeError(f"module 'repro' has no attribute {name!r}")
    import importlib
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # cache for the next access
    return value


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))
