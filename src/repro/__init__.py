"""HighLight: a log-structured file system for tertiary storage management.

A complete reproduction of John T. Kohl's USENIX Winter 1993 paper
(UC Berkeley, Project Sequoia 2000), implemented from scratch in Python
over calibrated device simulators.

Package map
-----------

``repro.sim``
    Deterministic virtual-time kernel (actors, timeline resources,
    scheduler) replacing the paper's kernel/user-process concurrency.
``repro.blockdev``
    Data-bearing device models calibrated to the paper's Table 5:
    RZ57/RZ58/HP7958A disks, the HP 6300 MO changer, Metrum tape and
    Sony WORM jukeboxes, SCSI buses.
``repro.footprint``
    Sequoia's abstract robotic-storage interface.
``repro.lfs``
    The 4.4BSD LFS substrate: segmented log, ifile, inodes, directories,
    buffer cache, segment writer, cleaner, checkpoints, roll-forward
    recovery, and a consistency checker.
``repro.ffs``
    The clustered-FFS baseline used in Tables 2-3.
``repro.core``
    HighLight itself: the unified block address space, block-map driver,
    segment cache, tsegfile, staging segments, migrator, service and I/O
    processes, the migration-policy zoo, and the future-work extensions
    (tertiary cleaner, delayed write-out, replicas, adaptive cache
    sizing, automigration daemon).
``repro.workloads``
    Workload generators (the large-object benchmark, archival traces,
    project trees, checkpoints, database page mixes).
``repro.bench``
    Testbed construction and runners regenerating every paper table and
    figure (``python -m repro.bench``).

Quickstart
----------

>>> from repro.bench import harness
>>> bed = harness.make_highlight()
>>> harness.preload_write_volume(bed)
>>> _ = bed.fs.write_path("/hello", b"tertiary-bound bytes")
>>> bed.fs.checkpoint()
>>> bed.app.sleep(3600)
>>> _ = bed.migrator.migrate_file("/hello")
>>> _ = bed.migrator.flush()
>>> bed.fs.read_path("/hello")
b'tertiary-bound bytes'
"""

__version__ = "1.0.0"

__all__ = [
    "sim", "blockdev", "footprint", "lfs", "ffs", "core", "workloads",
    "bench", "errors", "util",
]
