"""The user-level cleaner: garbage-collects dirty segments.

"The cleaner selects one or more dirty segments to be cleaned, appends all
valid data from those segments to the tail of the log, and then marks those
segments clean" (paper §3).  It communicates with the file system through
the ifile and the ``lfs_bmapv``/``lfs_markv`` calls, and being "user-level"
here means it is an ordinary object with its own actor whose policy can be
swapped without touching the filesystem.

Selection policies: greedy (least live bytes) and the Sprite-LFS
cost-benefit ratio.  HighLight's migrator reuses the same segment-walking
machinery (paper §6.7) but targets staging segments instead of the log
tail.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import List, Optional, Tuple

from repro import obs
from repro.blockdev.datapath import block_views
from repro.lfs.constants import BLOCK_SIZE, UNASSIGNED
from repro.lfs.ifile import SEG_CACHED, SEG_CLEAN, SEG_GONE
from repro.lfs.inode import unpack_inode_block
from repro.lfs.summary import SegmentSummary
from repro.sim.actor import Actor


class CleaningPolicy(ABC):
    """Chooses which dirty segments to clean next."""

    @abstractmethod
    def rank(self, fs, segno: int) -> float:
        """Higher rank = cleaned sooner."""

    def select(self, fs, limit: int) -> List[int]:
        candidates = [segno for segno in fs.ifile.dirty_segments()
                      if not fs.ifile.seguse(segno).flags & (SEG_CACHED | SEG_GONE)]
        candidates.sort(key=lambda s: self.rank(fs, s), reverse=True)
        return candidates[:limit]


class GreedyPolicy(CleaningPolicy):
    """Clean the emptiest segments first."""

    def rank(self, fs, segno: int) -> float:
        seg = fs.ifile.seguse(segno)
        return float(fs.config.segment_size - seg.live_bytes)


class CostBenefitPolicy(CleaningPolicy):
    """Sprite LFS cost-benefit: (1 - u) * age / (1 + u)."""

    def __init__(self, now_fn=None) -> None:
        self._now_fn = now_fn

    def rank(self, fs, segno: int) -> float:
        seg = fs.ifile.seguse(segno)
        u = min(1.0, seg.live_bytes / fs.config.segment_size)
        now = self._now_fn() if self._now_fn else fs.actor.time
        age = max(0.0, now - seg.lastmod)
        return (1.0 - u) * age / (1.0 + u)


def walk_segment(fs, actor: Actor, segno: int):
    """Parse a dirty segment's partial segments from one full-segment read.

    Yields ``(summary, entries, inode_daddrs, inode_blocks)`` per partial,
    where ``entries`` is a list of (inum, lbn, daddr, data).  The cleaner
    reads the whole segment in a single large transfer, like the real one.
    """
    base = fs.seg_base(segno)
    bps = fs.config.blocks_per_seg
    # Borrowed per-block buffers instead of a joined image: the extent
    # store hands back each whole-block extent untouched, so walking a
    # dead segment copies nothing (block data is only materialised for
    # the live blocks the caller actually forwards).
    refs = fs.dev_read_refs(actor, base, bps)
    image = block_views(refs, BLOCK_SIZE)
    offset = 0
    while offset < bps:
        raw = image[offset]
        summary = SegmentSummary.try_unpack(
            raw if isinstance(raw, bytes) else bytes(raw),
            fs.config.summary_size)
        if summary is None:
            break
        ndata = summary.ndata_blocks()
        ninode = len(summary.inode_daddrs)
        if offset + 1 + ndata + ninode > bps:
            break  # corrupt catalogue; stop walking
        entries: List[Tuple[int, int, int, bytes]] = []
        index = 0
        for fi in summary.finfos:
            for lbn in fi.blocks:
                daddr = base + offset + 1 + index
                entries.append((fi.ino, lbn,
                                daddr, image[offset + 1 + index]))
                index += 1
        inode_blocks = []
        for j in range(ninode):
            blk = image[offset + 1 + ndata + j]
            inode_blocks.append(blk if isinstance(blk, bytes)
                                else bytes(blk))
        yield summary, entries, summary.inode_daddrs, inode_blocks
        # Partials are laid out back to back within a segment.
        offset += 1 + ndata + ninode
        nxt = summary.next_daddr
        if nxt == UNASSIGNED or fs.segno_of(nxt) != segno:
            break


class Cleaner:
    """Reclaims dirty segments by forwarding live data to the log tail."""

    def __init__(self, fs, policy: Optional[CleaningPolicy] = None,
                 actor: Optional[Actor] = None,
                 target_clean: int = 8,
                 max_per_pass: int = 4) -> None:
        self.fs = fs
        self.policy = policy or CostBenefitPolicy()
        self.actor = actor or Actor("cleaner", clock=fs.actor.clock)
        self.target_clean = target_clean
        self.max_per_pass = max_per_pass
        self.segments_cleaned = 0
        self.blocks_forwarded = 0

    def needs_cleaning(self) -> bool:
        return self.fs.ifile.clean_count() < self.target_clean

    def clean_pass(self) -> int:
        """One cleaning pass; returns segments reclaimed."""
        blocks_before = self.blocks_forwarded
        victims = self.policy.select(self.fs, self.max_per_pass)
        cleaned = 0
        for segno in victims:
            if self.clean_segment(segno):
                cleaned += 1
        obs.counter("cleaner_passes_total", "disk cleaner passes run").inc()
        obs.event(obs.EV_CLEAN_PASS, self.actor.time,
                  candidates=len(victims), cleaned=cleaned,
                  blocks_forwarded=self.blocks_forwarded - blocks_before,
                  actor=self.actor.name)
        return cleaned

    def run(self, max_passes: int = 64) -> int:
        """Clean until the headroom target is met (or nothing reclaimable)."""
        total = 0
        for _ in range(max_passes):
            if not self.needs_cleaning():
                break
            reclaimed = self.clean_pass()
            if reclaimed == 0:
                break
            total += reclaimed
        return total

    def clean_segment(self, segno: int) -> bool:
        """Clean one segment; returns False if it cannot be cleaned now."""
        fs = self.fs
        seg = fs.ifile.seguse(segno)
        if seg.is_active() or seg.is_cached() or not seg.is_dirty():
            return False
        live_blocks: List[Tuple[int, int, bytes]] = []
        live_inodes: List[int] = []
        for summary, entries, ino_daddrs, ino_blocks in walk_segment(
                fs, self.actor, segno):
            flags = fs.lfs_bmapv([(inum, lbn, daddr)
                                  for inum, lbn, daddr, _ in entries],
                                 self.actor)
            for (inum, lbn, _daddr, data), alive in zip(entries, flags):
                if alive:
                    # Materialise only what gets forwarded; dead blocks
                    # stay borrowed views and cost nothing.
                    live_blocks.append(
                        (inum, lbn,
                         data if isinstance(data, bytes) else bytes(data)))
            for daddr, blk in zip(ino_daddrs, ino_blocks):
                for ino in unpack_inode_block(blk):
                    entry = fs.ifile.imap_lookup(ino.inum)
                    if entry is not None and entry.daddr == daddr:
                        live_inodes.append(ino.inum)
        if live_blocks:
            # Indirect blocks are forwarded only if their content is
            # current; bmapv already guaranteed that.
            fs.lfs_markv(live_blocks, self.actor)
            self.blocks_forwarded += len(live_blocks)
            obs.counter("cleaner_blocks_forwarded_total",
                        "live blocks re-appended by the cleaner").inc(
                            len(live_blocks))
        for inum in live_inodes:
            fs.get_inode(inum, self.actor)
            fs.mark_inode_dirty(inum)
        fs.segwriter.flush(self.actor)
        seg.flags = SEG_CLEAN
        seg.live_bytes = 0
        seg.cache_tag = UNASSIGNED
        self.segments_cleaned += 1
        obs.counter("cleaner_segments_cleaned_total",
                    "dirty segments reclaimed by the cleaner").inc()
        return True
