"""The ifile: cleaner info, segment-usage table, and inode map.

"In 4.4BSD LFS, both the inode map and the segment summary table are
contained in a regular file, called the ifile" (paper §3).  HighLight's
ifile is "a superset of that from the 4.4BSD LFS ifile": each segment entry
gains a cached-segment flag, a bytes-available count (for media of
uncertain capacity), and a cache directory tag (paper §6.4).

The in-memory IFile is authoritative during operation; checkpoints
serialise it into the ifile's file blocks through the normal write path,
and mount/recovery parses it back.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.errors import CorruptFilesystem, InvalidArgument
from repro.lfs.constants import (BLOCK_SIZE, FIRST_FREE_INUM, UNASSIGNED)

# Segment state flags (paper Fig. 1/Fig. 3 state keys).
SEG_CLEAN = 0x01
SEG_DIRTY = 0x02
SEG_ACTIVE = 0x04
#: HighLight: this disk segment is a cache line for a tertiary segment.
SEG_CACHED = 0x08
#: HighLight: cached line not yet copied out to tertiary (staging).
SEG_STAGING = 0x10
#: Segment's backing store was removed from service (disk removal).
SEG_GONE = 0x20

_SEGUSE = struct.Struct("<IHHdIId")  # live, flags, pad, lastmod, avail, tag, fetch
_IMAP = struct.Struct("<IIII")       # daddr, version, nextfree, pad
_HEADER = struct.Struct("<IIIII")    # nsegs, nimap, free_head, clean, dirty

SEGUSE_SIZE = _SEGUSE.size
IMAP_ENTRY_SIZE = _IMAP.size


@dataclass
class SegUse:
    """Per-segment usage summary (one entry of the segment usage table)."""

    live_bytes: int = 0
    flags: int = SEG_CLEAN
    lastmod: float = 0.0
    #: Usable bytes in this segment's container (uncertain-capacity media).
    bytes_avail: int = 0
    #: Tertiary segment number cached here (UNASSIGNED when not a cache line).
    cache_tag: int = UNASSIGNED
    #: Virtual time this cache line was fetched (policy input, paper §5.4).
    fetch_time: float = 0.0

    def is_clean(self) -> bool:
        return bool(self.flags & SEG_CLEAN)

    def is_dirty(self) -> bool:
        return bool(self.flags & SEG_DIRTY)

    def is_active(self) -> bool:
        return bool(self.flags & SEG_ACTIVE)

    def is_cached(self) -> bool:
        return bool(self.flags & SEG_CACHED)

    def pack(self) -> bytes:
        return _SEGUSE.pack(self.live_bytes, self.flags, 0, self.lastmod,
                            self.bytes_avail, self.cache_tag, self.fetch_time)

    @classmethod
    def unpack(cls, data: bytes) -> "SegUse":
        live, flags, _pad, lastmod, avail, tag, fetch = _SEGUSE.unpack(
            data[:_SEGUSE.size])
        return cls(live_bytes=live, flags=flags, lastmod=lastmod,
                   bytes_avail=avail, cache_tag=tag, fetch_time=fetch)


@dataclass
class IMapEntry:
    """Inode map entry: where an inode's inode block currently lives."""

    daddr: int = UNASSIGNED
    version: int = 0
    nextfree: int = 0

    def pack(self) -> bytes:
        return _IMAP.pack(self.daddr, self.version, self.nextfree, 0)

    @classmethod
    def unpack(cls, data: bytes) -> "IMapEntry":
        daddr, version, nextfree, _ = _IMAP.unpack(data[:_IMAP.size])
        return cls(daddr=daddr, version=version, nextfree=nextfree)


class IFile:
    """In-memory ifile: segment usage table + inode map + free-inode list."""

    def __init__(self, nsegs: int) -> None:
        if nsegs <= 0:
            raise InvalidArgument("filesystem needs at least one segment")
        self.segs: List[SegUse] = [SegUse() for _ in range(nsegs)]
        self.imap: Dict[int, IMapEntry] = {}
        self._free_head = 0           # 0 = no freed inums; allocate fresh
        self._next_inum = FIRST_FREE_INUM

    # -- segment usage ---------------------------------------------------------

    @property
    def nsegs(self) -> int:
        return len(self.segs)

    def seguse(self, segno: int) -> SegUse:
        if not 0 <= segno < len(self.segs):
            raise InvalidArgument(f"segment {segno} out of range")
        return self.segs[segno]

    def clean_count(self) -> int:
        return sum(1 for s in self.segs
                   if s.is_clean() and not s.flags & SEG_GONE)

    def dirty_count(self) -> int:
        return sum(1 for s in self.segs if s.is_dirty())

    def clean_segments(self) -> Iterator[int]:
        """Segment numbers currently clean and usable."""
        for segno, seg in enumerate(self.segs):
            if seg.is_clean() and not seg.flags & (SEG_GONE | SEG_CACHED):
                yield segno

    def dirty_segments(self) -> Iterator[int]:
        for segno, seg in enumerate(self.segs):
            if seg.is_dirty() and not seg.is_active():
                yield segno

    def grow(self, extra_segs: int) -> None:
        """Add segments (on-line disk addition, paper §6.4)."""
        if extra_segs < 0:
            raise InvalidArgument("cannot shrink with grow()")
        self.segs.extend(SegUse() for _ in range(extra_segs))

    # -- inode map -------------------------------------------------------------

    def imap_entry(self, inum: int) -> IMapEntry:
        entry = self.imap.get(inum)
        if entry is None:
            raise CorruptFilesystem(f"inode {inum} has no imap entry")
        return entry

    def imap_lookup(self, inum: int) -> Optional[IMapEntry]:
        return self.imap.get(inum)

    def set_inode_daddr(self, inum: int, daddr: int) -> None:
        entry = self.imap.setdefault(inum, IMapEntry())
        entry.daddr = daddr

    def alloc_inum(self) -> int:
        """Allocate an inode number (free list first, then fresh)."""
        if self._free_head:
            inum = self._free_head
            entry = self.imap[inum]
            self._free_head = entry.nextfree
            entry.nextfree = 0
            entry.daddr = UNASSIGNED
            entry.version += 1
            return inum
        inum = self._next_inum
        self._next_inum += 1
        self.imap[inum] = IMapEntry(version=1)
        return inum

    def free_inum(self, inum: int) -> None:
        """Return an inode number to the free list."""
        entry = self.imap_entry(inum)
        entry.daddr = UNASSIGNED
        entry.nextfree = self._free_head
        self._free_head = inum

    # -- serialisation ----------------------------------------------------------

    def serialize(self) -> bytes:
        """Flatten to the ifile's file content (block-padded regions)."""
        imap_inums = sorted(self.imap)
        header = _HEADER.pack(len(self.segs), len(imap_inums),
                              self._free_head, self.clean_count(),
                              self.dirty_count())
        header += struct.pack("<I", self._next_inum)
        blocks = [header.ljust(BLOCK_SIZE, b"\0")]
        seg_raw = b"".join(s.pack() for s in self.segs)
        blocks.append(seg_raw)
        imap_raw = b"".join(struct.pack("<I", inum) + self.imap[inum].pack()
                            for inum in imap_inums)
        blocks.append(imap_raw)
        out = bytearray()
        for region in blocks:
            out += region
            pad = (-len(out)) % BLOCK_SIZE
            out += bytes(pad)
        return bytes(out)

    @classmethod
    def deserialize(cls, data: bytes) -> "IFile":
        if len(data) < BLOCK_SIZE:
            raise CorruptFilesystem("ifile content too short")
        nsegs, nimap, free_head, _clean, _dirty = _HEADER.unpack_from(data, 0)
        (next_inum,) = struct.unpack_from("<I", data, _HEADER.size)
        ifile = cls(nsegs)
        ifile._free_head = free_head
        ifile._next_inum = next_inum
        offset = BLOCK_SIZE
        for segno in range(nsegs):
            ifile.segs[segno] = SegUse.unpack(
                data[offset:offset + SEGUSE_SIZE])
            offset += SEGUSE_SIZE
        offset += (-offset) % BLOCK_SIZE
        entry_size = 4 + IMAP_ENTRY_SIZE
        for _ in range(nimap):
            (inum,) = struct.unpack_from("<I", data, offset)
            ifile.imap[inum] = IMapEntry.unpack(
                data[offset + 4:offset + entry_size])
            offset += entry_size
        return ifile
