"""The segment writer: appends partial segments to the log tail.

Gathers dirty blocks into partial segments — summary block first, then the
described file/indirect blocks, then inode blocks — and writes each partial
as one contiguous device operation (the large sequential transfers that
motivate the whole design).  The gather step pays a memory copy into the
staging buffer on the host CPU; that copy is the paper's explanation for
LFS losing to FFS on sequential writes (§7.1).

Flush ordering guarantees within one call:
  phase A: data blocks (lbn >= 0), which dirties index structures;
  phase B: indirect blocks, children before roots (ascending negative lbn);
  phase C: inode blocks, updating the inode map;
  finally (checkpoint only) the ifile's own inode.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.errors import InvalidArgument
from repro.lfs.constants import BLOCK_SIZE, INODES_PER_BLOCK, UNASSIGNED
from repro.lfs.ifile import SEG_ACTIVE, SEG_CLEAN, SEG_DIRTY
from repro.lfs.inode import Inode, pack_inode_block
from repro.lfs.summary import FileInfo, SegmentSummary, SS_DIROP
from repro.sim.actor import Actor


class _PartialBuilder:
    """Accumulates one partial segment and emits it as a contiguous write."""

    def __init__(self, fs, actor: Actor) -> None:
        self.fs = fs
        self.actor = actor
        self._reset()

    def _reset(self) -> None:
        self.summary = SegmentSummary(create=self.actor.time)
        self.blocks: List[bytes] = []
        self.inode_blocks: List[bytes] = []

    @property
    def _bps(self) -> int:
        return self.fs.config.blocks_per_seg

    def _used(self) -> int:
        """Blocks this partial occupies so far (incl. its summary)."""
        if not self.blocks and not self.inode_blocks:
            return 0
        return 1 + len(self.blocks) + len(self.inode_blocks)

    def _room_for(self, nblocks: int) -> bool:
        used = self._used() or 1  # a fresh partial still needs its summary
        return self.fs.cur_offset + used + nblocks <= self._bps

    def _make_room(self, nblocks: int, new_file: bool,
                   inoblk: bool) -> None:
        """Emit/advance until the next item fits in segment and summary."""
        if (self._room_for(nblocks)
                and self.summary.fits(self.fs.config.summary_size,
                                      extra_file=new_file,
                                      extra_blocks=0 if inoblk else nblocks,
                                      extra_inoblk=inoblk)):
            return
        self.emit()
        if self.fs.cur_offset + 1 + nblocks > self._bps:
            self._advance_segment()

    def _advance_segment(self) -> None:
        fs = self.fs
        new_segno = fs.pick_clean_segment()
        old = fs.seguse_for(fs.cur_segno)
        old.flags &= ~SEG_ACTIVE
        new = fs.seguse_for(new_segno)
        new.flags = (new.flags & ~SEG_CLEAN) | SEG_DIRTY | SEG_ACTIVE
        fs.cur_segno = new_segno
        fs.cur_offset = 0
        fs.stats.segments_written += 1

    # -- adders --------------------------------------------------------------

    def add_block(self, inum: int, lbn: int, data: bytes,
                  lastlength: int = BLOCK_SIZE) -> int:
        """Place one file/indirect block; returns its assigned address."""
        if self.inode_blocks:
            # Phases guarantee data precedes inodes; a stray interleave
            # would corrupt the layout recovery expects, so split.
            self.emit()
        new_file = (not self.summary.finfos
                    or self.summary.finfos[-1].ino != inum)
        self._make_room(1, new_file=new_file, inoblk=False)
        new_file = (not self.summary.finfos
                    or self.summary.finfos[-1].ino != inum)
        daddr = (self.fs.seg_base(self.fs.cur_segno) + self.fs.cur_offset
                 + 1 + len(self.blocks))
        if new_file:
            self.summary.finfos.append(FileInfo(inum, lastlength, [lbn]))
        else:
            fi = self.summary.finfos[-1]
            fi.blocks.append(lbn)
            fi.lastlength = lastlength
        self.blocks.append(data)
        return daddr

    def add_inode_block(self, inodes: List[Inode]) -> int:
        """Place one inode block; returns its assigned address."""
        self._make_room(1, new_file=False, inoblk=True)
        daddr = (self.fs.seg_base(self.fs.cur_segno) + self.fs.cur_offset
                 + 1 + len(self.blocks) + len(self.inode_blocks))
        self.inode_blocks.append(pack_inode_block(inodes))
        self.summary.inode_daddrs.append(daddr)
        return daddr

    # -- emission -------------------------------------------------------------

    def emit(self) -> None:
        """Write the accumulated partial segment to the device."""
        fs = self.fs
        used = self._used()
        if used == 0:
            return
        end = fs.cur_offset + used
        if end > self._bps:
            raise InvalidArgument("partial segment overflows its segment")
        # Thread the log: where will the *next* partial start?
        if self._bps - end < 2:
            next_segno = fs.pick_clean_segment()
            next_daddr = fs.seg_base(next_segno)
            seal_segment = True
        else:
            next_daddr = fs.seg_base(fs.cur_segno) + end
            seal_segment = False
        self.summary.next_daddr = next_daddr
        payload = self.blocks + self.inode_blocks
        self.summary.compute_datasum(payload)
        raw_summary = self.summary.pack(fs.config.summary_size)
        summary_block = raw_summary.ljust(BLOCK_SIZE, b"\0")
        parts = [summary_block] + payload
        nbytes = sum(len(p) for p in parts)
        # The staging copy's virtual cost: LFS "copies block buffers into
        # a staging area before writing to disk, so that the disk driver
        # can do a single large transfer" (paper §7.1).  The host-side
        # gather is gone — the device adopts the immutable blocks as one
        # vectored write — but the simulated machine still pays for it.
        fs.cpu.copy(self.actor, nbytes)
        fs.dev_writev(self.actor, fs.seg_base(fs.cur_segno) + fs.cur_offset,
                      parts)
        seg = fs.seguse_for(fs.cur_segno)
        seg.flags = (seg.flags & ~SEG_CLEAN) | SEG_DIRTY
        seg.lastmod = self.actor.time
        fs.stats.partials_written += 1
        fs.cur_offset = end
        if seal_segment:
            self._advance_segment()
        self._reset()


class SegmentWriter:
    """Drives flushes of the buffer cache into the log."""

    def __init__(self, fs) -> None:
        self.fs = fs
        self._ifile_inode_daddr = UNASSIGNED

    # -- helpers ---------------------------------------------------------------

    def _lastlength(self, ino: Inode, lbn: int) -> int:
        """Valid bytes of (ino, lbn): short only for the file's last block."""
        if lbn < 0:
            return BLOCK_SIZE
        end = (lbn + 1) * BLOCK_SIZE
        if end <= ino.size:
            return BLOCK_SIZE
        rem = ino.size - lbn * BLOCK_SIZE
        return max(0, min(BLOCK_SIZE, rem)) or BLOCK_SIZE

    def flush(self, actor: Optional[Actor] = None,
              include_ifile_inode: bool = False) -> int:
        """Write all dirty state to the log.

        Returns the device address of the inode block holding the ifile's
        inode when ``include_ifile_inode`` is set (checkpoint path), else
        UNASSIGNED.
        """
        fs = self.fs
        actor = actor or fs.actor
        builder = _PartialBuilder(fs, actor)

        # Phase A: data blocks.
        data_bufs = sorted(
            (b for b in fs.bcache.dirty_buffers() if b.key[1] >= 0),
            key=lambda b: b.key)
        for buf in data_bufs:
            inum, lbn = buf.key
            ino = fs.get_inode(inum, actor)
            old = fs.bmap(ino, lbn, actor)
            daddr = builder.add_block(inum, lbn, buf.data,
                                      self._lastlength(ino, lbn))
            if ino.is_dir():
                # ss_flags marks partials carrying directory operations.
                builder.summary.flags |= SS_DIROP
            fs.set_bmap(ino, lbn, daddr, actor)
            fs.account_block_moved(old, daddr)
            fs.bcache.mark_clean(buf.key)

        # Phase B: indirect blocks, children before roots; iterate to a
        # fixed point because writing a child dirties its root.
        written: Set[Tuple[int, int]] = set()
        while True:
            ind_bufs = sorted(
                (b for b in fs.bcache.dirty_buffers()
                 if b.key[1] < 0 and b.key not in written),
                key=lambda b: b.key[1])
            if not ind_bufs:
                break
            for buf in ind_bufs:
                inum, lbn = buf.key
                ino = fs.get_inode(inum, actor)
                old = fs.bmap(ino, lbn, actor)
                daddr = builder.add_block(inum, lbn, buf.data)
                fs.set_bmap(ino, lbn, daddr, actor)
                fs.account_block_moved(old, daddr)
                fs.bcache.mark_clean(buf.key)
                written.add(buf.key)

        # Phase C: inode blocks.
        dirty_inums = sorted(fs._dirty_inodes)
        fs._dirty_inodes.clear()
        for start in range(0, len(dirty_inums), INODES_PER_BLOCK):
            chunk = dirty_inums[start:start + INODES_PER_BLOCK]
            inodes = [fs.get_inode(inum, actor) for inum in chunk]
            daddr = builder.add_inode_block(inodes)
            for ino in inodes:
                entry = fs.ifile.imap_lookup(ino.inum)
                if entry is None:
                    continue  # unlinked while dirty
                fs.account_block_moved(entry.daddr, daddr, nbytes=128)
                entry.daddr = daddr

        ifile_daddr = UNASSIGNED
        if include_ifile_inode:
            ifile_daddr = builder.add_inode_block([fs.ifile_inode])
            fs.account_block_moved(self._ifile_inode_daddr, ifile_daddr,
                                   nbytes=128)
            self._ifile_inode_daddr = ifile_daddr

        builder.emit()
        return ifile_daddr
