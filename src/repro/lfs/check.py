"""A consistency checker for mounted filesystems (the fsck analogue).

LFS recovery is roll-forward rather than scan-and-repair, but a checker
is still invaluable for testing: after any stress sequence (churn,
cleaning, migration, crashes) the invariants verified here must hold.

Checks, for plain LFS:

* every imap entry's device address lands in a tracked segment and the
  inode block there really contains the inode (with matching inum);
* every reachable file's block pointers land in tracked segments, and no
  two live blocks share a device address;
* directory tree connectivity: every allocated inode is reachable from
  the root (the ifile and other pinned files excepted);
* per-segment live-byte counts never exceed the segment size, clean
  segments hold no live pointers, and exactly one segment is active.

For HighLight, additionally:

* cache directory and ifile SEG_CACHED flags/tags agree both ways;
* tertiary pointers land on allocated tertiary segments;
* tsegfile allocation cursors are within bounds.

When the superblock anchors a persistence area (``sb.persist_root``,
see docs/RECOVERY.md), the checkpoint slots are validated too: both
slots unreadable is an error, a single corrupt slot only a warning
(dual slots exist precisely so one may be mid-write at a crash), and a
persistence serial *ahead* of the superblock's checkpoint serial is an
error — the LFS checkpoint is always made durable first.

Callers that know what the filesystem *should* contain can pass an
``oracle`` mapping of path -> expected bytes; every entry is read back
and compared, which is how the crash harness proves zero acknowledged
bytes were lost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import AddressError
from repro.lfs.constants import (BLOCK_SIZE, IFILE_INUM, ROOT_INUM,
                                 UNASSIGNED)
from repro.lfs.inode import find_inode_in_block
from repro.sim.actor import Actor


@dataclass
class CheckReport:
    """Findings of one consistency check."""

    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)
    files_checked: int = 0
    blocks_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.errors

    def error(self, message: str) -> None:
        self.errors.append(message)

    def warn(self, message: str) -> None:
        self.warnings.append(message)

    def render(self) -> str:
        lines = [f"fsck: {self.files_checked} files, "
                 f"{self.blocks_checked} blocks"]
        lines += [f"  ERROR: {e}" for e in self.errors]
        lines += [f"  warn:  {w}" for w in self.warnings]
        lines.append("  clean" if self.ok else "  INCONSISTENT")
        return "\n".join(lines)


def _segment_valid(fs, daddr: int) -> bool:
    try:
        segno = fs.segno_of(daddr)
    except AddressError:
        return False
    if fs.is_disk_segno(segno):
        return True
    aspace = getattr(fs, "aspace", None)
    return aspace is not None and aspace.is_tertiary_segno(segno)


def check_filesystem(fs, actor: Actor | None = None,
                     oracle: Optional[Dict[str, bytes]] = None
                     ) -> CheckReport:
    """Verify the invariants described in the module docstring."""
    actor = actor or fs.actor
    report = CheckReport()
    seen_daddrs: Dict[int, Tuple[int, int]] = {}

    # Pass 1: namespace walk — reachability + per-file block checks.
    reachable: Set[int] = set()
    stack = [("/", ROOT_INUM)]
    while stack:
        path, inum = stack.pop()
        if inum in reachable:
            report.error(f"directory loop or double link at {path}")
            continue
        reachable.add(inum)
        try:
            ino = fs.get_inode(inum, actor)
        except Exception as exc:
            report.error(f"{path}: unreadable inode {inum}: {exc}")
            continue
        report.files_checked += 1
        _check_file_blocks(fs, actor, path, ino, seen_daddrs, report)
        if ino.is_dir():
            try:
                names = fs.readdir(path, actor)
            except Exception as exc:
                report.error(f"{path}: unreadable directory: {exc}")
                continue
            for name in names:
                child = (path.rstrip("/") + "/" + name)
                try:
                    stack.append((child, fs.lookup(child, actor)))
                except Exception as exc:
                    report.error(f"{child}: broken entry: {exc}")

    # Pass 2: imap — addresses point at blocks containing the inode.
    for inum, entry in sorted(fs.ifile.imap.items()):
        if entry.daddr == UNASSIGNED:
            continue  # freed
        if not _segment_valid(fs, entry.daddr):
            report.error(f"inode {inum}: imap daddr {entry.daddr} "
                         "outside any tracked segment")
            continue
        segno = fs.segno_of(entry.daddr)
        if fs.is_disk_segno(segno) and fs.ifile.seguse(segno).is_clean():
            # A clean segment is reclaimable at any moment; an inode
            # block living there would vanish on the next reuse.  (The
            # live-block sweep in pass 3 only covers *file* blocks, so
            # this was invisible until the crash matrix exercised it.)
            report.error(f"inode {inum}: imap daddr {entry.daddr} lands "
                         f"in clean segment {segno}")
        try:
            raw = fs.dev_read(actor, entry.daddr, 1)
            find_inode_in_block(raw, inum)
        except Exception as exc:
            report.error(f"inode {inum}: not found at imap daddr "
                         f"{entry.daddr}: {exc}")
        if inum not in reachable and inum not in getattr(
                fs, "pinned_inums", {IFILE_INUM}):
            report.warn(f"inode {inum} allocated but unreachable "
                        "(orphan)")

    # Pass 3: segment usage invariants.
    active = 0
    for segno, seg in enumerate(fs.ifile.segs):
        if seg.live_bytes > fs.config.segment_size:
            report.error(f"segment {segno}: live bytes "
                         f"{seg.live_bytes} exceed segment size")
        if seg.is_active():
            active += 1
        if seg.is_clean() and seg.is_dirty():
            report.error(f"segment {segno}: both clean and dirty")
    if active != 1:
        report.error(f"{active} active segments (expected exactly 1)")
    clean_with_live = [
        segno for segno, count in _live_per_segment(fs, seen_daddrs).items()
        if fs.is_disk_segno(segno) and fs.ifile.seguse(segno).is_clean()]
    for segno in clean_with_live:
        report.error(f"segment {segno}: clean but holds live blocks")

    if getattr(fs, "cache", None) is not None:
        _check_highlight(fs, report)
    if getattr(fs.sb, "persist_root", 0):
        _check_persist_slots(fs, actor, report)
    if oracle:
        _check_oracle(fs, actor, oracle, report)
    return report


def _check_oracle(fs, actor: Actor, oracle: Dict[str, bytes],
                  report: CheckReport) -> None:
    """Compare every oracle entry against what the tree actually holds."""
    for path in sorted(oracle):
        expected = oracle[path]
        try:
            got = fs.read_path(path, actor=actor)
        except Exception as exc:
            report.error(f"{path}: oracle read-back failed: {exc}")
            continue
        if got != expected:
            first = next((i for i, (a, b) in enumerate(zip(got, expected))
                          if a != b), min(len(got), len(expected)))
            report.error(f"{path}: content differs from oracle "
                         f"({len(got)} vs {len(expected)} bytes, first "
                         f"divergence at offset {first})")


def _check_persist_slots(fs, actor: Actor, report: CheckReport) -> None:
    """Validate the dual persistence checkpoint slots (docs/RECOVERY.md)."""
    from repro.persist.format import (SLOT_BASES, SLOT_BLOCKS,
                                      PersistFormatError, decode_slot)
    sb_serial = fs.sb.latest_checkpoint().serial
    invalid = 0
    nonblank = 0
    for slot, base in enumerate(SLOT_BASES):
        raw = fs.dev_read(actor, base, SLOT_BLOCKS)
        try:
            image = decode_slot(bytes(raw))
        except PersistFormatError as exc:
            invalid += 1
            nonblank += 1
            report.warn(f"persist slot {slot}: undecodable ({exc})")
            continue
        if image is None:
            continue  # blank slot: never yet written
        nonblank += 1
        if image.serial > sb_serial:
            report.error(
                f"persist slot {slot}: serial {image.serial} is ahead of "
                f"the superblock checkpoint serial {sb_serial}; the LFS "
                "checkpoint must always be durable first")
    if nonblank and invalid == nonblank:
        report.error("no persistence slot is decodable (persist_root set "
                     "but every written slot is corrupt)")


def _check_file_blocks(fs, actor, path, ino, seen_daddrs, report) -> None:
    nblocks = (ino.size + BLOCK_SIZE - 1) // BLOCK_SIZE
    for lbn in range(nblocks):
        try:
            daddr = fs.bmap(ino, lbn, actor)
        except Exception as exc:
            report.error(f"{path}: bmap({lbn}) failed: {exc}")
            continue
        if daddr == UNASSIGNED:
            continue  # hole
        report.blocks_checked += 1
        if not _segment_valid(fs, daddr):
            report.error(f"{path}: block {lbn} at {daddr} outside any "
                         "tracked segment")
            continue
        owner = seen_daddrs.get(daddr)
        if owner is not None and owner != (ino.inum, lbn):
            report.error(f"{path}: block {lbn} at {daddr} already owned "
                         f"by inode {owner[0]} lbn {owner[1]}")
        seen_daddrs[daddr] = (ino.inum, lbn)


def _live_per_segment(fs, seen_daddrs) -> Dict[int, int]:
    per_seg: Dict[int, int] = {}
    for daddr in seen_daddrs:
        try:
            segno = fs.segno_of(daddr)
        except AddressError:
            continue
        per_seg[segno] = per_seg.get(segno, 0) + 1
    return per_seg


def _check_highlight(fs, report: CheckReport) -> None:
    # Cache directory <-> ifile flags, both directions.
    for tsegno in fs.cache.lines():
        disk_segno = fs.cache.lookup(tsegno)
        seg = fs.ifile.seguse(disk_segno)
        if not seg.is_cached():
            report.error(f"cache line {disk_segno} (tertiary {tsegno}) "
                         "not flagged SEG_CACHED")
        if seg.cache_tag != tsegno:
            report.error(f"cache line {disk_segno}: tag {seg.cache_tag} "
                         f"!= directory entry {tsegno}")
    for disk_segno, seg in enumerate(fs.ifile.segs):
        if seg.is_cached():
            if fs.cache.lookup(seg.cache_tag) != disk_segno:
                report.error(f"segment {disk_segno} flagged cached but "
                             "absent from the cache directory")
    # Tertiary allocation cursors.
    for vol, meta in enumerate(fs.tsegfile.volumes):
        if not 0 <= meta.next_free <= meta.nsegs:
            report.error(f"volume {vol}: next_free {meta.next_free} "
                         f"out of range [0, {meta.nsegs}]")
        for seg_in_vol in range(meta.next_free, meta.nsegs):
            use = fs.tsegfile.seguse(vol, seg_in_vol)
            if use.live_bytes:
                report.error(f"volume {vol} seg {seg_in_vol}: live bytes "
                             "beyond the allocation cursor")
