"""The LFS superblock with dual checkpoint slots.

During a checkpoint "the address of the most recent ifile inode is stored
in the superblock so that the recovery agent may find it" (paper §3).  Two
checkpoint slots alternate so a crash mid-checkpoint always leaves one
valid; recovery picks the slot with the higher serial whose checksum
verifies.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field

from repro.errors import CorruptFilesystem
from repro.lfs.constants import (BLOCK_SIZE, RESERVED_BLOCKS, SEGMENT_SIZE,
                                 SUPERBLOCK_MAGIC, UNASSIGNED)
from repro.util.checksum import cksum32

_FIXED = struct.Struct("<IIIIIIII")       # magic, bsize, ssize, nsegs, ncachesegs, flags, persist_root, rsv
_CKPT = struct.Struct("<QIIdI")           # serial, ifile_daddr, cur_segno, timestamp, cksum


@dataclass
class Checkpoint:
    """One checkpoint slot."""

    serial: int = 0
    ifile_daddr: int = UNASSIGNED
    #: Device address where the next partial segment would start —
    #: roll-forward recovery begins scanning here.
    log_daddr: int = 0
    timestamp: float = 0.0

    def pack(self) -> bytes:
        body = struct.pack("<QIId", self.serial, self.ifile_daddr,
                           self.log_daddr, self.timestamp)
        return body + struct.pack("<I", cksum32(body))

    @classmethod
    def unpack(cls, data: bytes) -> "Checkpoint":
        body, (stored,) = data[:_CKPT.size - 4], struct.unpack(
            "<I", data[_CKPT.size - 4:_CKPT.size])
        if cksum32(body) != stored:
            raise CorruptFilesystem("checkpoint checksum mismatch")
        serial, ifile_daddr, log_daddr, timestamp = struct.unpack("<QIId", body)
        return cls(serial, ifile_daddr, log_daddr, timestamp)


@dataclass
class Superblock:
    """Filesystem-wide parameters plus the two checkpoint slots."""

    block_size: int = BLOCK_SIZE
    segment_size: int = SEGMENT_SIZE
    nsegs: int = 0
    #: Static cap on disk segments usable as tertiary cache lines
    #: (HighLight; 0 for plain LFS).  Paper §6.4.
    ncachesegs: int = 0
    flags: int = 0
    #: First reserved block of the persistence checkpoint area
    #: (``repro.persist``), or 0 when the image carries none.  Lives in a
    #: previously-reserved fixed-header word, so legacy images (which
    #: packed a literal 0 there) read back as "no persist area".
    persist_root: int = 0
    checkpoints: list = field(default_factory=lambda: [Checkpoint(), Checkpoint()])

    #: Device block where the superblock lives (within the reserved area).
    LOCATION = 0

    def pack(self) -> bytes:
        fixed = _FIXED.pack(SUPERBLOCK_MAGIC, self.block_size,
                            self.segment_size, self.nsegs,
                            self.ncachesegs, self.flags,
                            self.persist_root, 0)
        raw = fixed + self.checkpoints[0].pack() + self.checkpoints[1].pack()
        return raw.ljust(BLOCK_SIZE, b"\0")

    @classmethod
    def unpack(cls, data: bytes) -> "Superblock":
        magic, bsize, ssize, nsegs, ncache, flags, persist_root, _ = \
            _FIXED.unpack(data[:_FIXED.size])
        if magic != SUPERBLOCK_MAGIC:
            raise CorruptFilesystem(f"bad superblock magic {magic:#x}")
        sb = cls(block_size=bsize, segment_size=ssize, nsegs=nsegs,
                 ncachesegs=ncache, flags=flags, persist_root=persist_root)
        offset = _FIXED.size
        slots = []
        for _i in range(2):
            try:
                slots.append(Checkpoint.unpack(data[offset:offset + _CKPT.size]))
            except CorruptFilesystem:
                slots.append(None)
            offset += _CKPT.size
        if slots[0] is None and slots[1] is None:
            raise CorruptFilesystem("both checkpoint slots are corrupt")
        sb.checkpoints = [slot if slot is not None else Checkpoint()
                          for slot in slots]
        return sb

    # -- checkpoint slot management -----------------------------------------

    def latest_checkpoint(self) -> Checkpoint:
        """The valid checkpoint with the highest serial."""
        a, b = self.checkpoints
        return a if a.serial >= b.serial else b

    def store_checkpoint(self, ckpt: Checkpoint) -> None:
        """Write ``ckpt`` into the older slot (alternating-slot discipline)."""
        a, b = self.checkpoints
        if a.serial <= b.serial:
            self.checkpoints[0] = ckpt
        else:
            self.checkpoints[1] = ckpt

    # -- geometry -------------------------------------------------------------

    @property
    def blocks_per_seg(self) -> int:
        return self.segment_size // self.block_size

    def seg_base(self, segno: int) -> int:
        """First device block of disk segment ``segno`` (boot-block shift)."""
        return RESERVED_BLOCKS + segno * self.blocks_per_seg
