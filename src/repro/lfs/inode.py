"""On-media inodes: the FFS-style inode 4.4BSD LFS shares (paper §3, §6.2).

An inode holds 12 direct 32-bit block pointers plus single- and
double-indirect pointers; pointers address 4 KB blocks, so a file tops out
at ~4.2 GB here (the paper's 16 TB bound comes from the 32-bit address
space itself; its test files are <=200 MB).  Inodes are 128 bytes, 32 per
inode block; the inode map locates the inode *block* and the inode is found
within it by number, exactly as in 4.4BSD.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List

from repro.errors import CorruptFilesystem, InvalidArgument
from repro.lfs.constants import (BLOCK_SIZE, INODE_SIZE, INODES_PER_BLOCK,
                                 NDADDR, NIADDR, UNASSIGNED)

# File type bits (subset of BSD st_mode).
S_IFREG = 0o100000
S_IFDIR = 0o040000
S_IFMT = 0o170000

_FMT = struct.Struct("<IHHIIQdddIIII" + "I" * NDADDR + "I" * NIADDR)
assert _FMT.size <= INODE_SIZE, _FMT.size


@dataclass
class Inode:
    """An in-memory inode mirroring the 128-byte on-media record."""

    inum: int
    mode: int = S_IFREG | 0o644
    nlink: int = 1
    uid: int = 0
    gid: int = 0
    size: int = 0
    atime: float = 0.0
    mtime: float = 0.0
    ctime: float = 0.0
    gen: int = 0
    flags: int = 0
    blocks: int = 0          # blocks held (data + indirect), for accounting
    db: List[int] = field(default_factory=lambda: [UNASSIGNED] * NDADDR)
    ib: List[int] = field(default_factory=lambda: [UNASSIGNED] * NIADDR)

    # -- type predicates -----------------------------------------------------

    def is_dir(self) -> bool:
        return (self.mode & S_IFMT) == S_IFDIR

    def is_reg(self) -> bool:
        return (self.mode & S_IFMT) == S_IFREG

    # -- serialisation ---------------------------------------------------------

    def pack(self) -> bytes:
        raw = _FMT.pack(self.inum, self.mode, self.nlink, self.uid, self.gid,
                        self.size, self.atime, self.mtime, self.ctime,
                        self.gen, self.flags, self.blocks, 0,
                        *self.db, *self.ib)
        return raw.ljust(INODE_SIZE, b"\0")

    @classmethod
    def unpack(cls, data: bytes) -> "Inode":
        if len(data) < INODE_SIZE:
            raise InvalidArgument("short inode buffer")
        fields = _FMT.unpack(data[:_FMT.size])
        (inum, mode, nlink, uid, gid, size, atime, mtime, ctime,
         gen, flags, blocks, _pad) = fields[:13]
        db = list(fields[13:13 + NDADDR])
        ib = list(fields[13 + NDADDR:13 + NDADDR + NIADDR])
        return cls(inum=inum, mode=mode, nlink=nlink, uid=uid, gid=gid,
                   size=size, atime=atime, mtime=mtime, ctime=ctime,
                   gen=gen, flags=flags, blocks=blocks, db=db, ib=ib)

    def copy(self) -> "Inode":
        """A deep-enough copy (fresh pointer lists)."""
        clone = Inode.unpack(self.pack())
        return clone


def pack_inode_block(inodes: List[Inode]) -> bytes:
    """Serialise up to 32 inodes into one 4 KB inode block."""
    if len(inodes) > INODES_PER_BLOCK:
        raise InvalidArgument(
            f"{len(inodes)} inodes > {INODES_PER_BLOCK} per block")
    raw = b"".join(ino.pack() for ino in inodes)
    return raw.ljust(BLOCK_SIZE, b"\0")


def unpack_inode_block(data: bytes) -> List[Inode]:
    """Parse every populated inode slot out of an inode block."""
    inodes = []
    for slot in range(INODES_PER_BLOCK):
        chunk = data[slot * INODE_SIZE:(slot + 1) * INODE_SIZE]
        if len(chunk) < INODE_SIZE or chunk[:4] == b"\0\0\0\0":
            continue  # empty slot (inum 0 is never allocated)
        inodes.append(Inode.unpack(chunk))
    return inodes


def find_inode_in_block(data: bytes, inum: int) -> Inode:
    """Locate inode ``inum`` within an inode block (4.4BSD-style scan)."""
    for ino in unpack_inode_block(data):
        if ino.inum == inum:
            return ino
    raise CorruptFilesystem(f"inode {inum} not found in its inode block")
