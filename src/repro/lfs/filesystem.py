"""The log-structured filesystem proper.

Implements the 4.4BSD LFS semantics the paper builds on (§3):

* all data, metadata, and directories live in a segmented log;
* the inode map (in the ifile) locates each file's inode;
* reads follow FFS-style direct/indirect pointers once the inode is found;
* writes append to the log tail, relocating blocks and dirtying their
  index structures, which are themselves appended;
* checkpoints store the ifile inode's address in the superblock;
* recovery rolls forward along the threaded log (see ``recovery.py``).

Every operation takes an :class:`~repro.sim.Actor` (defaulting to the
filesystem's own "kernel" actor) and charges virtual device and CPU time,
so the paper's benchmarks fall out of the same code paths that move real
bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.blockdev.base import BlockDevice, CPUModel
from repro.blockdev.datapath import block_views
from repro.errors import (FileExists, FileNotFound, InvalidArgument,
                          IsADirectory, DirectoryNotEmpty, NoSpace,
                          NotADirectory)
from repro.lfs.buffercache import BufferCache
from repro.lfs.constants import (BLOCK_SIZE, DOUBLE_ROOT_LBN,
                                 FIRST_DOUBLE_CHILD_LBN, IFILE_INUM, MAX_LBN,
                                 NDADDR, PTRS_PER_BLOCK, RESERVED_BLOCKS,
                                 ROOT_INUM, SEGMENT_SIZE, SINGLE_ROOT_LBN,
                                 SUMMARY_SIZE_LFS, UNASSIGNED, double_child_lbn)
from repro.lfs.directory import Directory
from repro.lfs.ifile import IFile, IMapEntry, SEG_ACTIVE, SEG_DIRTY
from repro.lfs.inode import (Inode, S_IFDIR, S_IFREG, find_inode_in_block)
from repro.lfs.superblock import Checkpoint, Superblock
from repro.sim.actor import Actor

_PTR = struct.Struct("<I")

#: Indirect blocks start life holding all-UNASSIGNED pointers.
_EMPTY_INDIRECT = b"\xff" * BLOCK_SIZE


@dataclass
class LFSConfig:
    """Tunables for one filesystem instance."""

    segment_size: int = SEGMENT_SIZE
    summary_size: int = SUMMARY_SIZE_LFS
    bcache_bytes: int = int(3.2 * 1024 * 1024)
    #: Max blocks coalesced into one device read (64 KB clustering).
    cluster_blocks: int = 16
    #: Update atime on reads (the STP migration policy feeds on this).
    atime_updates: bool = True
    #: Flush the log when this fraction of the buffer cache is dirty.
    flush_fraction: float = 0.5
    #: Refuse to allocate the last few clean segments (cleaner headroom).
    min_free_segs: int = 2

    @property
    def blocks_per_seg(self) -> int:
        return self.segment_size // BLOCK_SIZE


@dataclass
class LFSStats:
    """Operation counters, mostly for tests and reports."""

    reads: int = 0
    writes: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    segments_written: int = 0
    partials_written: int = 0
    checkpoints: int = 0
    demand_fetches: int = 0


class LFS:
    """A mounted log-structured filesystem."""

    def __init__(self, device: BlockDevice, config: Optional[LFSConfig] = None,
                 cpu: Optional[CPUModel] = None,
                 actor: Optional[Actor] = None) -> None:
        self.device = device
        self.config = config or LFSConfig()
        self.cpu = cpu or CPUModel()
        self.actor = actor or Actor("lfs-kernel")
        self.bcache = BufferCache(self.config.bcache_bytes)
        self.stats = LFSStats()
        #: Per-inode last-read lbn, for sequential read-ahead detection.
        self._last_read_lbn: Dict[int, int] = {}

        # Populated by mkfs()/mount():
        self.sb: Superblock = Superblock()
        self.ifile: IFile = IFile(1)
        self.ifile_inode: Inode = Inode(IFILE_INUM)
        self._inodes: Dict[int, Inode] = {}
        self._dirty_inodes: Set[int] = set()
        self.cur_segno: int = 0
        self.cur_offset: int = 0          # blocks consumed in cur segment
        self._mounted = False

        # Late import to avoid a cycle; the writer needs the fs object.
        from repro.lfs.segwriter import SegmentWriter
        self.segwriter = SegmentWriter(self)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def mkfs(cls, device: BlockDevice, config: Optional[LFSConfig] = None,
             cpu: Optional[CPUModel] = None,
             actor: Optional[Actor] = None,
             ncachesegs: int = 0) -> "LFS":
        """Create a fresh filesystem on ``device`` and mount it."""
        fs = cls(device, config, cpu, actor)
        bps = fs.config.blocks_per_seg
        nsegs = (device.capacity_blocks - RESERVED_BLOCKS) // bps
        if nsegs < 4:
            raise InvalidArgument("device too small for an LFS")
        # One segment of address space is unusable: the boot-block shift
        # makes the last addressable segment too short (paper §6.3).
        fs.sb = Superblock(segment_size=fs.config.segment_size, nsegs=nsegs,
                           ncachesegs=ncachesegs)
        fs.ifile = IFile(nsegs)
        for seg in fs.ifile.segs:
            seg.bytes_avail = fs.config.segment_size
        fs.ifile_inode = Inode(IFILE_INUM, mode=S_IFREG | 0o600)
        fs.cur_segno = 0
        fs.cur_offset = 0
        seg0 = fs.ifile.seguse(0)
        seg0.flags = SEG_DIRTY | SEG_ACTIVE
        fs._mounted = True
        # Root directory.
        root = Inode(ROOT_INUM, mode=S_IFDIR | 0o755, nlink=2)
        fs.ifile.imap[ROOT_INUM] = IMapEntry(version=1)
        fs._inodes[ROOT_INUM] = root
        fs._write_dir(root, Directory.new(ROOT_INUM, ROOT_INUM), fs.actor)
        fs.checkpoint(fs.actor)
        return fs

    @classmethod
    def mount(cls, device: BlockDevice, config: Optional[LFSConfig] = None,
              cpu: Optional[CPUModel] = None,
              actor: Optional[Actor] = None) -> "LFS":
        """Mount an existing filesystem, rolling the log forward."""
        from repro.lfs.recovery import mount as _mount
        return _mount(cls, device, config, cpu, actor)

    # ------------------------------------------------------------------
    # Address geometry (overridden by HighLight for the unified space)
    # ------------------------------------------------------------------

    def seg_base(self, segno: int) -> int:
        """First block address of segment ``segno``."""
        return self.sb.seg_base(segno)

    def segno_of(self, daddr: int) -> int:
        """Segment number containing block address ``daddr``."""
        return (daddr - RESERVED_BLOCKS) // self.config.blocks_per_seg

    def is_disk_segno(self, segno: int) -> bool:
        """True when ``segno`` refers to a secondary-storage segment."""
        return 0 <= segno < self.ifile.nsegs

    # -- raw device access (always through here; HighLight redirects) -------

    def dev_read(self, actor: Actor, daddr: int, nblocks: int) -> bytes:
        self.stats.blocks_read += nblocks
        return self.device.read(actor, daddr, nblocks)

    def dev_read_refs(self, actor: Actor, daddr: int, nblocks: int):
        """As :meth:`dev_read`, returning borrowed byte ranges (the
        migrator's bulk gather path — no join copy on the host)."""
        self.stats.blocks_read += nblocks
        return self.device.read_refs(actor, daddr, nblocks)

    def dev_write(self, actor: Actor, daddr: int, data: bytes) -> None:
        self.stats.blocks_written += len(data) // BLOCK_SIZE
        self.device.write(actor, daddr, data)

    def dev_writev(self, actor: Actor, daddr: int, parts) -> None:
        """Gather-write a list of block buffers as one device op."""
        self.stats.blocks_written += sum(len(p) for p in parts) // BLOCK_SIZE
        self.device.writev(actor, daddr, parts)

    # ------------------------------------------------------------------
    # Inode management
    # ------------------------------------------------------------------

    def get_inode(self, inum: int, actor: Optional[Actor] = None) -> Inode:
        """Fetch an inode, reading its inode block from the log if needed."""
        if inum == IFILE_INUM:
            return self.ifile_inode
        ino = self._inodes.get(inum)
        if ino is not None:
            return ino
        actor = actor or self.actor
        entry = self.ifile.imap_lookup(inum)
        if entry is None or entry.daddr == UNASSIGNED:
            raise FileNotFound(f"inode {inum}")
        block = self.dev_read(actor, entry.daddr, 1)
        self.cpu.block_ops(actor, 1)
        ino = find_inode_in_block(block, inum)
        self._inodes[inum] = ino
        return ino

    def mark_inode_dirty(self, inum: int) -> None:
        if inum != IFILE_INUM:
            self._dirty_inodes.add(inum)

    def alloc_inode(self, mode: int, actor: Actor) -> Inode:
        inum = self.ifile.alloc_inum()
        ino = Inode(inum, mode=mode,
                    atime=actor.time, mtime=actor.time, ctime=actor.time)
        ino.gen = self.ifile.imap_entry(inum).version
        self._inodes[inum] = ino
        self.mark_inode_dirty(inum)
        return ino

    # ------------------------------------------------------------------
    # Block mapping: logical block -> device address
    # ------------------------------------------------------------------

    def _read_indirect(self, ino: Inode, ind_lbn: int, daddr: int,
                       actor: Actor) -> bytes:
        """Read an indirect block through the buffer cache."""
        key = (ino.inum, ind_lbn)
        cached = self.bcache.get(key)
        if cached is not None:
            return cached
        if daddr == UNASSIGNED:
            return _EMPTY_INDIRECT
        data = self.dev_read(actor, daddr, 1)
        self.cpu.block_ops(actor, 1)
        self.bcache.put(key, data, dirty=False)
        return data

    def _ensure_indirect(self, ino: Inode, ind_lbn: int, daddr: int,
                         actor: Actor) -> bytes:
        """Like _read_indirect, but materialises a fresh block for holes."""
        key = (ino.inum, ind_lbn)
        cached = self.bcache.get(key)
        if cached is not None:
            return cached
        if daddr == UNASSIGNED:
            self.bcache.put(key, _EMPTY_INDIRECT, dirty=True)
            ino.blocks += 1
            return _EMPTY_INDIRECT
        data = self.dev_read(actor, daddr, 1)
        self.cpu.block_ops(actor, 1)
        self.bcache.put(key, data, dirty=False)
        return data

    @staticmethod
    def _ptr_of(block: bytes, index: int) -> int:
        return _PTR.unpack_from(block, index * 4)[0]

    def _patch_indirect(self, ino: Inode, ind_lbn: int, index: int,
                        daddr: int) -> None:
        key = (ino.inum, ind_lbn)
        data = self.bcache.peek(key)
        if data is None:
            raise InvalidArgument(
                f"indirect block {ind_lbn} of inode {ino.inum} not cached")
        patched = bytearray(data)
        _PTR.pack_into(patched, index * 4, daddr)
        self.bcache.put(key, bytes(patched), dirty=True)

    def bmap(self, ino: Inode, lbn: int, actor: Optional[Actor] = None) -> int:
        """Current device address of logical block ``lbn`` (may be a hole).

        Negative ``lbn`` values name indirect blocks, following the
        4.4BSD convention.
        """
        actor = actor or self.actor
        if lbn == SINGLE_ROOT_LBN:
            return ino.ib[0]
        if lbn == DOUBLE_ROOT_LBN:
            return ino.ib[1]
        if lbn < 0:  # a double-indirect child: pointer lives in the root
            j = -(lbn - FIRST_DOUBLE_CHILD_LBN)  # lbn = -(3+j)
            j = (-lbn) - 3
            root = self._read_indirect(ino, DOUBLE_ROOT_LBN, ino.ib[1], actor)
            return self._ptr_of(root, j)
        if lbn < NDADDR:
            return ino.db[lbn]
        if lbn < NDADDR + PTRS_PER_BLOCK:
            single = self._read_indirect(ino, SINGLE_ROOT_LBN, ino.ib[0], actor)
            return self._ptr_of(single, lbn - NDADDR)
        if lbn > MAX_LBN:
            raise InvalidArgument(f"lbn {lbn} exceeds max file size")
        rel = lbn - NDADDR - PTRS_PER_BLOCK
        j, k = divmod(rel, PTRS_PER_BLOCK)
        root = self._read_indirect(ino, DOUBLE_ROOT_LBN, ino.ib[1], actor)
        child_daddr = self._ptr_of(root, j)
        child = self._read_indirect(ino, double_child_lbn(j), child_daddr,
                                    actor)
        return self._ptr_of(child, k)

    def bmap_cached(self, ino: Inode, lbn: int) -> Optional[int]:
        """Like bmap, but consults only in-core state: returns None when
        resolving would require reading an indirect block.

        The read-ahead cluster sizing uses this so that deciding *whether*
        to read ahead can never itself fault in metadata (e.g. a
        tertiary-resident indirect block).
        """
        if lbn == SINGLE_ROOT_LBN:
            return ino.ib[0]
        if lbn == DOUBLE_ROOT_LBN:
            return ino.ib[1]
        if lbn < 0:
            root = self.bcache.peek((ino.inum, DOUBLE_ROOT_LBN))
            if root is None:
                return None
            return self._ptr_of(root, (-lbn) - 3)
        if lbn < NDADDR:
            return ino.db[lbn]
        if lbn < NDADDR + PTRS_PER_BLOCK:
            single = self.bcache.peek((ino.inum, SINGLE_ROOT_LBN))
            if single is None:
                return None
            return self._ptr_of(single, lbn - NDADDR)
        if lbn > MAX_LBN:
            return None
        rel = lbn - NDADDR - PTRS_PER_BLOCK
        j, k = divmod(rel, PTRS_PER_BLOCK)
        child = self.bcache.peek((ino.inum, double_child_lbn(j)))
        if child is None:
            return None
        return self._ptr_of(child, k)

    def set_bmap(self, ino: Inode, lbn: int, daddr: int,
                 actor: Optional[Actor] = None) -> int:
        """Point logical block ``lbn`` at ``daddr``; returns the old address.

        Dirties whatever index structure held the pointer, materialising
        indirect blocks as needed — those dirty indirect blocks are then
        appended to the log by the segment writer, exactly as in LFS.
        """
        actor = actor or self.actor
        if lbn == SINGLE_ROOT_LBN:
            old, ino.ib[0] = ino.ib[0], daddr
            self.mark_inode_dirty(ino.inum)
            return old
        if lbn == DOUBLE_ROOT_LBN:
            old, ino.ib[1] = ino.ib[1], daddr
            self.mark_inode_dirty(ino.inum)
            return old
        if lbn < 0:  # double child
            j = (-lbn) - 3
            root = self._ensure_indirect(ino, DOUBLE_ROOT_LBN, ino.ib[1], actor)
            old = self._ptr_of(root, j)
            self._patch_indirect(ino, DOUBLE_ROOT_LBN, j, daddr)
            return old
        if lbn < NDADDR:
            old, ino.db[lbn] = ino.db[lbn], daddr
            self.mark_inode_dirty(ino.inum)
            return old
        if lbn < NDADDR + PTRS_PER_BLOCK:
            self._ensure_indirect(ino, SINGLE_ROOT_LBN, ino.ib[0], actor)
            idx = lbn - NDADDR
            single = self.bcache.peek((ino.inum, SINGLE_ROOT_LBN))
            old = self._ptr_of(single, idx)
            self._patch_indirect(ino, SINGLE_ROOT_LBN, idx, daddr)
            return old
        if lbn > MAX_LBN:
            raise InvalidArgument(f"lbn {lbn} exceeds max file size")
        rel = lbn - NDADDR - PTRS_PER_BLOCK
        j, k = divmod(rel, PTRS_PER_BLOCK)
        root = self._ensure_indirect(ino, DOUBLE_ROOT_LBN, ino.ib[1], actor)
        child_daddr = self._ptr_of(root, j)
        child_lbn = double_child_lbn(j)
        self._ensure_indirect(ino, child_lbn, child_daddr, actor)
        child = self.bcache.peek((ino.inum, child_lbn))
        old = self._ptr_of(child, k)
        self._patch_indirect(ino, child_lbn, k, daddr)
        return old

    # ------------------------------------------------------------------
    # Live-bytes accounting
    # ------------------------------------------------------------------

    def account_block_moved(self, old_daddr: int, new_daddr: int,
                            nbytes: int = BLOCK_SIZE) -> None:
        """Move ``nbytes`` of liveness from old_daddr's segment to new's."""
        if old_daddr != UNASSIGNED:
            segno = self.segno_of(old_daddr)
            if self._seg_tracked(segno):
                seg = self.seguse_for(segno)
                seg.live_bytes = max(0, seg.live_bytes - nbytes)
        if new_daddr != UNASSIGNED:
            segno = self.segno_of(new_daddr)
            if self._seg_tracked(segno):
                self.seguse_for(segno).live_bytes += nbytes

    def _seg_tracked(self, segno: int) -> bool:
        return 0 <= segno < self.ifile.nsegs

    def seguse_for(self, segno: int):
        """Usage entry for a segment (HighLight extends to tertiary)."""
        return self.ifile.seguse(segno)

    # ------------------------------------------------------------------
    # File data I/O
    # ------------------------------------------------------------------

    def read(self, inum: int, offset: int, nbytes: int,
             actor: Optional[Actor] = None,
             update_atime: bool = True) -> bytes:
        """Read file bytes; holes read as zeros; truncates at EOF."""
        actor = actor or self.actor
        ino = self.get_inode(inum, actor)
        if offset >= ino.size:
            return b""
        nbytes = min(nbytes, ino.size - offset)
        out = bytearray()
        lbn = offset // BLOCK_SIZE
        end_lbn = (offset + nbytes - 1) // BLOCK_SIZE
        while lbn <= end_lbn:
            block = self._read_block(ino, lbn, actor)
            out += block
            lbn += 1
        if self.config.atime_updates and update_atime:
            ino.atime = actor.time
            self.mark_inode_dirty(inum)
        self.stats.reads += 1
        start = offset % BLOCK_SIZE
        return bytes(out[start:start + nbytes])

    def _read_block(self, ino: Inode, lbn: int, actor: Actor) -> bytes:
        """One data block through the cache, with read clustering.

        Read-ahead clusters up to 64 KB of physically adjacent blocks,
        but only when the access continues a sequential pattern — a read
        of frame N after frame N-1 (or the file's start); isolated random
        reads fetch a single block, like the clustered FFS the paper
        benchmarks against.
        """
        self.cpu.block_ops(actor, 1)
        key = (ino.inum, lbn)
        last_lbn, ramp = self._last_read_lbn.get(ino.inum, (None, 2))
        sequential = lbn == 0 or last_lbn == lbn - 1
        # Read-ahead ramps up as sequentiality is confirmed: 2 blocks on
        # the first touch, doubling to the full 64 KB cluster.
        ramp = min(self.config.cluster_blocks, ramp * 2) if sequential else 2
        self._last_read_lbn[ino.inum] = (lbn, ramp)
        cached = self.bcache.get(key)
        if cached is not None:
            return cached
        daddr = self.bmap(ino, lbn, actor)
        if daddr == UNASSIGNED:
            return bytes(BLOCK_SIZE)
        run = 1
        if sequential:
            max_lbn_file = max(0, (ino.size + BLOCK_SIZE - 1) // BLOCK_SIZE - 1)
            while (run < ramp
                   and lbn + run <= max_lbn_file
                   and self.bcache.peek((ino.inum, lbn + run)) is None
                   and self.bmap_cached(ino, lbn + run) == daddr + run):
                run += 1
        # Borrowed ranges instead of a joined image: a store that keeps
        # whole-block extents hands each block through untouched (no join
        # copy, no re-slicing) — the per-block dict baseline still pays
        # its join inside read_refs.
        refs = self.dev_read_refs(actor, daddr, run)
        blocks = [b if isinstance(b, bytes) else bytes(b)
                  for b in block_views(refs, BLOCK_SIZE)]
        for i in range(run):
            self.bcache.put((ino.inum, lbn + i), blocks[i], dirty=False)
        return blocks[0]

    def write(self, inum: int, offset: int, data: bytes,
              actor: Optional[Actor] = None) -> int:
        """Write file bytes at ``offset``; extends the file as needed."""
        actor = actor or self.actor
        ino = self.get_inode(inum, actor)
        if ino.is_dir() and inum != IFILE_INUM:
            # Directory content is written via _write_dir only.
            pass
        pos = offset
        remaining = memoryview(bytes(data))
        while remaining.nbytes:
            lbn = pos // BLOCK_SIZE
            in_block = pos % BLOCK_SIZE
            take = min(BLOCK_SIZE - in_block, remaining.nbytes)
            if take == BLOCK_SIZE:
                block = bytes(remaining[:take])
            else:
                base = self._read_block_for_update(ino, lbn, actor)
                block = (base[:in_block] + bytes(remaining[:take])
                         + base[in_block + take:])
            key = (inum, lbn)
            if self.bcache.peek(key) is None and self.bmap(ino, lbn, actor) == UNASSIGNED:
                ino.blocks += 1
            # The user-space copy into the buffer cache overlaps device
            # I/O on the paper's machine, so it is not charged here; the
            # LFS staging copy at segment-write time is the one that
            # shows up in the measurements (§7.1).
            self.bcache.put(key, block, dirty=True)
            pos += take
            remaining = remaining[take:]
        if pos > ino.size:
            ino.size = pos
        ino.mtime = actor.time
        self.mark_inode_dirty(inum)
        self.stats.writes += 1
        if self.bcache.needs_flush(self.config.flush_fraction):
            self.segwriter.flush(actor)
        return len(data)

    def _read_block_for_update(self, ino: Inode, lbn: int,
                               actor: Actor) -> bytes:
        if lbn * BLOCK_SIZE >= ino.size:
            return bytes(BLOCK_SIZE)
        return self._read_block(ino, lbn, actor)

    # ------------------------------------------------------------------
    # Namespace operations
    # ------------------------------------------------------------------

    def _read_dir(self, ino: Inode, actor: Actor) -> Directory:
        if not ino.is_dir():
            raise NotADirectory(f"inode {ino.inum}")
        raw = self.read(ino.inum, 0, ino.size, actor, update_atime=False)
        return Directory.parse(raw)

    def _write_dir(self, ino: Inode, directory: Directory,
                   actor: Actor) -> None:
        raw = directory.pack()
        old_size = ino.size
        self.write(ino.inum, 0, raw.ljust(
            max(len(raw), 1), b"\0"), actor)
        if len(raw) < old_size:
            self._truncate_blocks(ino, len(raw), actor)
        ino.size = max(len(raw), 1)
        self.mark_inode_dirty(ino.inum)

    def lookup(self, path: str, actor: Optional[Actor] = None) -> int:
        """Resolve a path to an inode number."""
        actor = actor or self.actor
        parts = [p for p in path.split("/") if p]
        inum = ROOT_INUM
        for part in parts:
            ino = self.get_inode(inum, actor)
            directory = self._read_dir(ino, actor)
            inum = directory.lookup(part)
        return inum

    def _parent_of(self, path: str, actor: Actor) -> Tuple[Inode, str]:
        parts = [p for p in path.split("/") if p]
        if not parts:
            raise InvalidArgument("path names the root")
        parent_path = "/".join(parts[:-1])
        parent_inum = self.lookup(parent_path, actor) if parent_path else ROOT_INUM
        return self.get_inode(parent_inum, actor), parts[-1]

    def create(self, path: str, mode: int = S_IFREG | 0o644,
               actor: Optional[Actor] = None) -> int:
        """Create a regular file; returns its inode number."""
        actor = actor or self.actor
        parent, name = self._parent_of(path, actor)
        directory = self._read_dir(parent, actor)
        if name in directory.entries:
            raise FileExists(path)
        ino = self.alloc_inode(mode, actor)
        directory.add(name, ino.inum)
        self._write_dir(parent, directory, actor)
        return ino.inum

    def mkdir(self, path: str, actor: Optional[Actor] = None) -> int:
        actor = actor or self.actor
        parent, name = self._parent_of(path, actor)
        directory = self._read_dir(parent, actor)
        if name in directory.entries:
            raise FileExists(path)
        ino = self.alloc_inode(S_IFDIR | 0o755, actor)
        ino.nlink = 2
        self._write_dir(ino, Directory.new(ino.inum, parent.inum), actor)
        directory.add(name, ino.inum)
        parent.nlink += 1
        self._write_dir(parent, directory, actor)
        return ino.inum

    def readdir(self, path: str, actor: Optional[Actor] = None) -> List[str]:
        actor = actor or self.actor
        ino = self.get_inode(self.lookup(path, actor), actor)
        return self._read_dir(ino, actor).names()

    def unlink(self, path: str, actor: Optional[Actor] = None) -> None:
        actor = actor or self.actor
        parent, name = self._parent_of(path, actor)
        directory = self._read_dir(parent, actor)
        inum = directory.lookup(name)
        ino = self.get_inode(inum, actor)
        if ino.is_dir():
            raise IsADirectory(path)
        directory.remove(name)
        self._write_dir(parent, directory, actor)
        ino.nlink -= 1
        if ino.nlink <= 0:
            self._destroy_inode(ino, actor)

    def rmdir(self, path: str, actor: Optional[Actor] = None) -> None:
        actor = actor or self.actor
        parent, name = self._parent_of(path, actor)
        directory = self._read_dir(parent, actor)
        inum = directory.lookup(name)
        ino = self.get_inode(inum, actor)
        if not ino.is_dir():
            raise NotADirectory(path)
        if not self._read_dir(ino, actor).is_empty():
            raise DirectoryNotEmpty(path)
        directory.remove(name)
        parent.nlink -= 1
        self._write_dir(parent, directory, actor)
        self._destroy_inode(ino, actor)

    def rename(self, old: str, new: str,
               actor: Optional[Actor] = None) -> None:
        """Simple rename (target must not exist)."""
        actor = actor or self.actor
        old_parent, old_name = self._parent_of(old, actor)
        inum = self._read_dir(old_parent, actor).lookup(old_name)
        new_parent, new_name = self._parent_of(new, actor)
        new_dir = self._read_dir(new_parent, actor)
        if new_name in new_dir.entries:
            raise FileExists(new)
        new_dir.add(new_name, inum)
        self._write_dir(new_parent, new_dir, actor)
        old_dir = self._read_dir(old_parent, actor)
        old_dir.remove(old_name)
        self._write_dir(old_parent, old_dir, actor)

    def _destroy_inode(self, ino: Inode, actor: Actor) -> None:
        self._truncate_blocks(ino, 0, actor)
        self.bcache.invalidate_inode(ino.inum)
        self._inodes.pop(ino.inum, None)
        self._dirty_inodes.discard(ino.inum)
        entry = self.ifile.imap_lookup(ino.inum)
        if entry is not None and entry.daddr != UNASSIGNED:
            segno = self.segno_of(entry.daddr)
            if self._seg_tracked(segno):
                seg = self.seguse_for(segno)
                seg.live_bytes = max(0, seg.live_bytes - 128)
        self.ifile.free_inum(ino.inum)

    def _truncate_blocks(self, ino: Inode, new_size: int,
                         actor: Actor) -> None:
        """Release data blocks past ``new_size`` (liveness accounting)."""
        first_dead = (new_size + BLOCK_SIZE - 1) // BLOCK_SIZE
        last = (ino.size + BLOCK_SIZE - 1) // BLOCK_SIZE
        for lbn in range(first_dead, last):
            old = self.set_bmap(ino, lbn, UNASSIGNED, actor)
            if old != UNASSIGNED:
                self.account_block_moved(old, UNASSIGNED)
                ino.blocks = max(0, ino.blocks - 1)
            self.bcache.invalidate((ino.inum, lbn))
        ino.size = new_size
        self.mark_inode_dirty(ino.inum)

    def truncate(self, path: str, new_size: int,
                 actor: Optional[Actor] = None) -> None:
        actor = actor or self.actor
        ino = self.get_inode(self.lookup(path, actor), actor)
        if new_size < ino.size:
            self._truncate_blocks(ino, new_size, actor)
        else:
            ino.size = new_size
            self.mark_inode_dirty(ino.inum)

    def stat(self, path: str, actor: Optional[Actor] = None) -> Inode:
        actor = actor or self.actor
        return self.get_inode(self.lookup(path, actor), actor)

    # -- path conveniences -----------------------------------------------------

    def write_path(self, path: str, data: bytes, offset: int = 0,
                   actor: Optional[Actor] = None,
                   create: bool = True) -> int:
        actor = actor or self.actor
        try:
            inum = self.lookup(path, actor)
        except FileNotFound:
            if not create:
                raise
            inum = self.create(path, actor=actor)
        return self.write(inum, offset, data, actor)

    def read_path(self, path: str, offset: int = 0, nbytes: int = -1,
                  actor: Optional[Actor] = None) -> bytes:
        actor = actor or self.actor
        inum = self.lookup(path, actor)
        if nbytes < 0:
            nbytes = self.get_inode(inum, actor).size - offset
        return self.read(inum, offset, nbytes, actor)

    # ------------------------------------------------------------------
    # Log management
    # ------------------------------------------------------------------

    def pick_clean_segment(self) -> int:
        """Next clean segment for the log (4.4BSD's selection algorithm)."""
        best = None
        for segno in self.ifile.clean_segments():
            if segno != self.cur_segno:
                best = segno if best is None else min(best, segno)
        if best is None:
            raise NoSpace("no clean segments left")
        return best

    def clean_headroom(self) -> int:
        return self.ifile.clean_count()

    def sync(self, actor: Optional[Actor] = None) -> None:
        """Flush all dirty data and metadata to the log (no checkpoint)."""
        self.segwriter.flush(actor or self.actor)

    def checkpoint(self, actor: Optional[Actor] = None) -> None:
        """Flush everything, then persist the ifile and superblock."""
        actor = actor or self.actor
        self.segwriter.flush(actor)
        self._write_ifile(actor)
        self.stats.checkpoints += 1

    def _write_ifile(self, actor: Actor) -> None:
        content = self.ifile.serialize()
        old_size = self.ifile_inode.size
        self.write(IFILE_INUM, 0, content, actor)
        if len(content) < old_size:
            self._truncate_blocks(self.ifile_inode, len(content), actor)
        self.ifile_inode.size = len(content)
        ifile_daddr = self.segwriter.flush(actor, include_ifile_inode=True)
        ckpt = Checkpoint(
            serial=self.sb.latest_checkpoint().serial + 1,
            ifile_daddr=ifile_daddr,
            log_daddr=self.log_position(),
            timestamp=actor.time,
        )
        self.sb.store_checkpoint(ckpt)
        self.dev_write(actor, Superblock.LOCATION, self.sb.pack())

    def log_position(self) -> int:
        """Device address where the next partial segment will start."""
        return self.seg_base(self.cur_segno) + self.cur_offset

    def _set_log_position(self, daddr: int) -> None:
        """Reposition the log tail (mount/recovery only)."""
        segno = self.segno_of(daddr)
        if not self.is_disk_segno(segno):
            raise InvalidArgument(f"log position {daddr} not on disk")
        self.cur_segno = segno
        self.cur_offset = daddr - self.seg_base(segno)

    def unmount(self, actor: Optional[Actor] = None) -> None:
        self.checkpoint(actor)
        self._mounted = False

    # ------------------------------------------------------------------
    # Cleaner/migrator support calls (the lfs_bmapv / lfs_markv analogues)
    # ------------------------------------------------------------------

    def lfs_bmapv(self, items: List[Tuple[int, Optional[int], int]],
                  actor: Optional[Actor] = None) -> List[bool]:
        """For each (inum, lbn, daddr): is that block still live there?

        ``lbn is None`` asks about the *inode* itself (live if the imap
        still points at ``daddr``).  This is the call both the cleaner and
        the migrator use to validate candidate blocks (paper §6.7).
        """
        actor = actor or self.actor
        out = []
        for inum, lbn, daddr in items:
            if inum == IFILE_INUM:
                ino = self.ifile_inode
            else:
                entry = self.ifile.imap_lookup(inum)
                if entry is None or entry.daddr == UNASSIGNED:
                    out.append(False)
                    continue
                if lbn is None:
                    out.append(entry.daddr == daddr)
                    continue
                try:
                    ino = self.get_inode(inum, actor)
                except FileNotFound:
                    out.append(False)
                    continue
            if lbn is None:
                out.append(self.ifile.imap_lookup(inum) is not None
                           and self.ifile.imap_entry(inum).daddr == daddr)
                continue
            out.append(self.bmap(ino, lbn, actor) == daddr)
        return out

    def lfs_markv(self, items: List[Tuple[int, int, bytes]],
                  actor: Optional[Actor] = None) -> None:
        """Re-inject live blocks at the log tail (cleaner's rewrite call).

        Each item is (inum, lbn, data); the blocks become dirty buffers and
        the next flush relocates them, updating all index structures.
        """
        actor = actor or self.actor
        for inum, lbn, data in items:
            ino = self.get_inode(inum, actor)
            key = (inum, lbn)
            if self.bcache.is_dirty(key):
                # A newer in-memory copy exists; it will be written (and
                # kill the old on-media copy) at the next flush anyway.
                continue
            self.bcache.put(key, data, dirty=True)
            self.cpu.block_ops(actor, 1)
            self.mark_inode_dirty(inum)

    # ------------------------------------------------------------------
    # Cache control (benchmark helpers)
    # ------------------------------------------------------------------

    def drop_caches(self, actor: Optional[Actor] = None,
                    drop_inodes: bool = False) -> None:
        """Flush dirty state, then empty the buffer (and inode) caches.

        Equivalent to the paper's 'flush the buffer cache' / 'freshly
        mounted filesystem' preconditions.
        """
        actor = actor or self.actor
        self.sync(actor)
        self.bcache.drop_clean()
        self._last_read_lbn.clear()
        if drop_inodes:
            self._inodes.clear()

    # -- statistics -------------------------------------------------------------

    def df(self) -> Dict[str, int]:
        """Segment-level space summary."""
        return {
            "segments": self.ifile.nsegs,
            "clean": self.ifile.clean_count(),
            "dirty": self.ifile.dirty_count(),
            "cached": sum(1 for s in self.ifile.segs if s.is_cached()),
            "live_bytes": sum(s.live_bytes for s in self.ifile.segs),
        }
