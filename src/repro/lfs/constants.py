"""On-media layout constants shared across the LFS implementation."""

from __future__ import annotations

from repro.util.units import KB, MB

#: File system block size.  HighLight block addresses are for 4-kilobyte
#: blocks (paper §6.3); with 32-bit pointers this caps a filesystem (and a
#: file) at 16 TB.
BLOCK_SIZE = 4 * KB

#: Log segment size.  "LFS divides the disk into 512KB or 1MB segments";
#: HighLight fetches whole 1 MB segments as its cache line (§5).
SEGMENT_SIZE = 1 * MB

BLOCKS_PER_SEG = SEGMENT_SIZE // BLOCK_SIZE

#: Out-of-band block address meaning "no block assigned" (the paper's "-1").
UNASSIGNED = 0xFFFFFFFF

#: Device blocks reserved at the head of the disk for boot blocks and the
#: superblock area; this shift is why the last addressable segment is too
#: short to use (paper §6.3).
RESERVED_BLOCKS = 16

#: Well-known inode numbers (match 4.4BSD LFS conventions).
IFILE_INUM = 1
ROOT_INUM = 2
FIRST_FREE_INUM = 3

#: Direct and indirect pointer counts in an inode.
NDADDR = 12
NIADDR = 2          # single + double indirect (ample for paper workloads)
PTRS_PER_BLOCK = BLOCK_SIZE // 4

#: Logical block numbers for indirect blocks (negative, out of the data
#: range, mirroring 4.4BSD's negative-lbn convention).
SINGLE_ROOT_LBN = -1
DOUBLE_ROOT_LBN = -2
FIRST_DOUBLE_CHILD_LBN = -3  # child j has lbn -(3 + j)

#: Largest data logical block: 12 direct + 1024 single + 1024^2 double.
MAX_LBN = NDADDR + PTRS_PER_BLOCK + PTRS_PER_BLOCK * PTRS_PER_BLOCK - 1

#: Inode on-media size; 32 inodes fit one 4 KB inode block.
INODE_SIZE = 128
INODES_PER_BLOCK = BLOCK_SIZE // INODE_SIZE

#: Partial-segment summary sizes: base 4.4BSD LFS uses a 512-byte summary
#: block; HighLight must use a 4 KB one because its pointers address 4 KB
#: blocks (paper §6.3).
SUMMARY_SIZE_LFS = 512
SUMMARY_SIZE_HIGHLIGHT = BLOCK_SIZE

#: Magic numbers.
SUPERBLOCK_MAGIC = 0x4C465331  # "LFS1"
SUMMARY_MAGIC = 0x53554D4D     # "SUMM"


def double_child_lbn(j: int) -> int:
    """Logical block number of the j-th child of the double-indirect root."""
    return -(3 + j)


def is_indirect_lbn(lbn: int) -> bool:
    """True if ``lbn`` names an indirect block rather than file data."""
    return lbn < 0
