"""The block buffer cache.

Keyed by (inum, logical block); dirty blocks are pinned until the segment
writer relocates them to the log.  The paper's test machine had 3.2 MB of
buffer cache and the benchmarks flush it before every phase — both
behaviours are supported.  Charging of per-block CPU time happens in the
filesystem layer, not here; this structure is pure bookkeeping.
"""

from __future__ import annotations

import heapq
from typing import Dict, Iterator, List, Optional, Tuple

from repro import obs
from repro.errors import InvalidArgument
from repro.lfs.constants import BLOCK_SIZE
from repro.util.lru import LRUTracker
from repro.util.units import MB

BufKey = Tuple[int, int]  # (inum, logical block number)


class Buffer:
    """One cached block."""

    __slots__ = ("key", "data", "dirty", "seq")

    def __init__(self, key: BufKey, data: bytes, dirty: bool = False) -> None:
        if len(data) != BLOCK_SIZE:
            raise InvalidArgument(
                f"buffer must be {BLOCK_SIZE}B, got {len(data)}")
        self.key = key
        self.data = data
        self.dirty = dirty
        self.seq = 0  # last-touch sequence number (eviction ordering)


class BufferCache:
    """A size-capped LRU cache of file blocks."""

    def __init__(self, capacity_bytes: int = int(3.2 * MB)) -> None:
        self.capacity_blocks = max(8, capacity_bytes // BLOCK_SIZE)
        self._bufs: Dict[BufKey, Buffer] = {}
        self._lru: LRUTracker[BufKey] = LRUTracker()
        self._dirty = 0
        self.hits = 0
        self.misses = 0
        # Eviction picks the least-recently-touched *clean* buffer.  A
        # linear LRU scan re-walks the dirty prefix on every eviction —
        # the single hottest site in the perf profile — so clean buffers
        # are also indexed in a lazy min-heap of (last-touch seq, key).
        # LRU order and ascending touch-seq order are the same order, so
        # the heap minimum (after discarding stale entries) is exactly
        # the buffer the scan would have picked.
        self._seq = 0
        self._clean_heap: List[Tuple[int, BufKey]] = []

    def __len__(self) -> int:
        return len(self._bufs)

    def dirty_count(self) -> int:
        # Maintained incrementally: needs_flush() runs on every write, so
        # an O(cache) scan here dominates large sequential-write phases.
        return self._dirty

    # -- lookup/insert -----------------------------------------------------

    def _touch(self, buf: Buffer) -> None:
        """Record a use: recency order, touch seq, clean-heap entry."""
        self._seq += 1
        buf.seq = self._seq
        self._lru.touch(buf.key)
        if not buf.dirty:
            self._push_clean(buf)

    def _push_clean(self, buf: Buffer) -> None:
        heap = self._clean_heap
        heapq.heappush(heap, (buf.seq, buf.key))
        # Entries go stale when a buffer is re-touched, dirtied, or
        # invalidated; they are skipped at pop time.  Compact when stale
        # entries dominate so the heap stays O(cache) in memory.
        if len(heap) > 64 and len(heap) > 4 * len(self._bufs):
            self._clean_heap = [(b.seq, k) for k, b in self._bufs.items()
                                if not b.dirty]
            heapq.heapify(self._clean_heap)

    def get(self, key: BufKey) -> Optional[bytes]:
        buf = self._bufs.get(key)
        if buf is None:
            self.misses += 1
            obs.counter("buffercache_misses_total",
                        "block buffer cache misses").inc()
            return None
        self.hits += 1
        obs.counter("buffercache_hits_total",
                    "block buffer cache hits").inc()
        self._touch(buf)
        return buf.data

    def peek(self, key: BufKey) -> Optional[bytes]:
        """Lookup without recency update or hit accounting."""
        buf = self._bufs.get(key)
        return buf.data if buf is not None else None

    def put(self, key: BufKey, data: bytes, dirty: bool) -> None:
        """Insert/overwrite a block; evicts clean LRU blocks to make room."""
        existing = self._bufs.get(key)
        if existing is not None:
            existing.data = data
            if dirty and not existing.dirty:
                self._dirty += 1
            existing.dirty = existing.dirty or dirty
            self._touch(existing)
            return
        self._evict_for_room()
        buf = Buffer(key, data, dirty)
        self._bufs[key] = buf
        if dirty:
            self._dirty += 1
        self._touch(buf)

    def mark_clean(self, key: BufKey) -> None:
        buf = self._bufs.get(key)
        if buf is not None:
            if buf.dirty:
                self._dirty -= 1
                buf.dirty = False
                # Now evictable at its *existing* recency (mark_clean is
                # not a use, so the LRU position must not change).
                self._push_clean(buf)

    def is_dirty(self, key: BufKey) -> bool:
        buf = self._bufs.get(key)
        return buf.dirty if buf is not None else False

    def _evict_for_room(self) -> None:
        heap = self._clean_heap
        while len(self._bufs) >= self.capacity_blocks:
            victim = None
            while heap:
                seq, key = heap[0]
                buf = self._bufs.get(key)
                if buf is None or buf.dirty or buf.seq != seq:
                    heapq.heappop(heap)  # stale entry
                    continue
                heapq.heappop(heap)
                victim = key
                break
            if victim is None:
                return  # everything dirty: caller must flush soon
            self._lru.discard(victim)
            del self._bufs[victim]
            obs.counter("buffercache_evictions_total",
                        "clean blocks evicted to make room").inc()

    # -- bulk operations -------------------------------------------------------

    def dirty_buffers(self) -> List[Buffer]:
        """All dirty buffers (segment-writer input), LRU-first."""
        return [self._bufs[k] for k in self._lru if self._bufs[k].dirty]

    def dirty_for_inode(self, inum: int) -> List[Buffer]:
        return [b for b in self._bufs.values()
                if b.dirty and b.key[0] == inum]

    def invalidate(self, key: BufKey) -> None:
        """Drop one block regardless of state (truncate/unlink path)."""
        buf = self._bufs.pop(key, None)
        if buf is not None and buf.dirty:
            self._dirty -= 1
        self._lru.discard(key)

    def invalidate_inode(self, inum: int) -> None:
        for key in [k for k in self._bufs if k[0] == inum]:
            self.invalidate(key)

    def drop_clean(self) -> int:
        """Flush-benchmark helper: discard every clean block."""
        victims = [k for k, b in self._bufs.items() if not b.dirty]
        for key in victims:
            self.invalidate(key)
        return len(victims)

    def keys(self) -> Iterator[BufKey]:
        return iter(list(self._bufs.keys()))

    def needs_flush(self, fraction: float = 0.5) -> bool:
        """True when dirty blocks crowd the cache (segment-write trigger)."""
        return self.dirty_count() >= self.capacity_blocks * fraction
