"""Log inspection utilities: render on-media structures for humans.

The debugging companion every log-structured filesystem grows: walk the
threaded log, print partial-segment catalogues, decode inode blocks, and
summarise segment states — all from the medium, independent of in-memory
state (so it is also useful against a crashed image).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.errors import ReproError
from repro.lfs.constants import BLOCK_SIZE, UNASSIGNED
from repro.lfs.ifile import (SEG_ACTIVE, SEG_CACHED, SEG_CLEAN, SEG_DIRTY,
                             SEG_STAGING)
from repro.lfs.inode import Inode, unpack_inode_block
from repro.lfs.summary import SS_DIROP, SegmentSummary
from repro.lfs.superblock import Superblock
from repro.sim.actor import Actor


@dataclass
class PartialInfo:
    """One decoded partial segment."""

    daddr: int
    summary: SegmentSummary
    inodes: List[Inode] = field(default_factory=list)

    @property
    def nblocks(self) -> int:
        return (1 + self.summary.ndata_blocks()
                + len(self.summary.inode_daddrs))

    def describe(self) -> str:
        files = ", ".join(
            f"ino {fi.ino}:{len(fi.blocks)}blk" for fi in
            self.summary.finfos) or "no file blocks"
        flags = " [dirop]" if self.summary.flags & SS_DIROP else ""
        inos = (f"; inodes {[i.inum for i in self.inodes]}"
                if self.inodes else "")
        return (f"partial @{self.daddr} ({self.nblocks} blocks){flags}: "
                f"{files}{inos} -> next {self.summary.next_daddr}")


def read_superblock(device, actor: Optional[Actor] = None) -> Superblock:
    """Decode the superblock straight from a device."""
    actor = actor or Actor("dump")
    return Superblock.unpack(device.read(actor, Superblock.LOCATION, 1))


def walk_log(fs, start_daddr: Optional[int] = None,
             actor: Optional[Actor] = None,
             max_partials: int = 10_000) -> Iterator[PartialInfo]:
    """Follow the threaded log from ``start_daddr`` (default: the latest
    checkpoint's position is *not* used — walking starts at segment 0's
    base unless told otherwise), yielding decoded partial segments."""
    actor = actor or fs.actor
    pos = fs.seg_base(0) if start_daddr is None else start_daddr
    seen = set()
    for _ in range(max_partials):
        if pos in seen or pos == UNASSIGNED:
            return
        seen.add(pos)
        try:
            raw = fs.dev_read(actor, pos, 1)
        except ReproError:
            return  # ran off the mapped log: end of the walk
        summary = SegmentSummary.try_unpack(raw, fs.config.summary_size)
        if summary is None:
            return
        info = PartialInfo(pos, summary)
        for daddr in summary.inode_daddrs:
            try:
                blk = fs.dev_read(actor, daddr, 1)
            except ReproError:
                continue  # summary points at an unmapped inode block
            info.inodes.extend(unpack_inode_block(blk))
        yield info
        pos = summary.next_daddr


def segment_map(fs, limit: Optional[int] = None) -> str:
    """A one-line-per-segment state map (the Figure 1/3 view)."""
    rows = []
    segs = fs.ifile.segs if limit is None else fs.ifile.segs[:limit]
    for segno, seg in enumerate(segs):
        letters = "".join(letter for flag, letter in (
            (SEG_CLEAN, "c"), (SEG_DIRTY, "d"), (SEG_ACTIVE, "a"),
            (SEG_CACHED, "C"), (SEG_STAGING, "S"))
            if seg.flags & flag) or "-"
        tag = (f" tag={seg.cache_tag}"
               if seg.cache_tag != UNASSIGNED else "")
        rows.append(f"seg {segno:>4} [{letters:<3}] "
                    f"live {seg.live_bytes:>8}{tag}")
    return "\n".join(rows)


def dump_inode(ino: Inode) -> str:
    """Human rendering of one inode."""
    kind = "dir" if ino.is_dir() else "reg"
    directs = [d for d in ino.db if d != UNASSIGNED]
    lines = [
        f"inode {ino.inum} ({kind}) size={ino.size} nlink={ino.nlink}",
        f"  times: a={ino.atime:.2f} m={ino.mtime:.2f} c={ino.ctime:.2f}",
        f"  direct blocks: {directs or 'none'}",
    ]
    if ino.ib[0] != UNASSIGNED:
        lines.append(f"  single indirect @ {ino.ib[0]}")
    if ino.ib[1] != UNASSIGNED:
        lines.append(f"  double indirect @ {ino.ib[1]}")
    return "\n".join(lines)


def dump_file_map(fs, path: str, actor: Optional[Actor] = None) -> str:
    """Where every block of a file lives (disk vs tertiary runs)."""
    actor = actor or fs.actor
    inum = fs.lookup(path, actor)
    ino = fs.get_inode(inum, actor)
    nblocks = (ino.size + BLOCK_SIZE - 1) // BLOCK_SIZE
    runs: List[Tuple[int, int, int, str]] = []  # lbn0, count, daddr0, kind
    for lbn in range(nblocks):
        daddr = fs.bmap(ino, lbn, actor)
        if daddr == UNASSIGNED:
            kind = "hole"
        elif hasattr(fs, "aspace") and fs.aspace is not None \
                and fs.aspace.is_tertiary_daddr(daddr):
            kind = "tertiary"
        else:
            kind = "disk"
        if (runs and runs[-1][3] == kind and kind != "hole"
                and daddr == runs[-1][2] + runs[-1][1]):
            lbn0, count, daddr0, _ = runs[-1]
            runs[-1] = (lbn0, count + 1, daddr0, kind)
        elif runs and runs[-1][3] == "hole" and kind == "hole":
            lbn0, count, daddr0, _ = runs[-1]
            runs[-1] = (lbn0, count + 1, daddr0, kind)
        else:
            runs.append((lbn, 1, daddr if kind != "hole" else 0, kind))
    lines = [f"{path}: inode {inum}, {nblocks} blocks"]
    for lbn0, count, daddr0, kind in runs:
        where = f"@ {daddr0}" if kind != "hole" else ""
        lines.append(f"  lbn {lbn0:>6}..{lbn0 + count - 1:<6} "
                     f"{kind:<8} {where}")
    return "\n".join(lines)


def dump_checkpoints(device, actor: Optional[Actor] = None) -> str:
    """Render both checkpoint slots from a device's superblock."""
    sb = read_superblock(device, actor)
    lines = [f"superblock: {sb.nsegs} segments of {sb.segment_size}B, "
             f"{sb.ncachesegs} cache segments"]
    for idx, ckpt in enumerate(sb.checkpoints):
        marker = " <- latest" if ckpt is sb.latest_checkpoint() else ""
        lines.append(f"  slot {idx}: serial {ckpt.serial}, ifile @ "
                     f"{ckpt.ifile_daddr}, log @ {ckpt.log_daddr}, "
                     f"t={ckpt.timestamp:.2f}{marker}")
    return "\n".join(lines)
