"""A 4.4BSD-style log-structured file system over simulated block devices.

This is the substrate HighLight extends (paper §3): a segmented log with
partial-segment summaries (Table 1), an inode map and segment-usage table
kept in the *ifile* (a regular file), a user-level cleaner, periodic
checkpoints, and roll-forward recovery along the threaded log.

All on-media structures are genuinely byte-serialised: recovery really
scans the log, checksums really catch torn partial segments, and file data
round-trips bit-for-bit through the block devices.
"""

from repro.lfs.constants import (BLOCK_SIZE, SEGMENT_SIZE, BLOCKS_PER_SEG,
                                 UNASSIGNED, IFILE_INUM, ROOT_INUM)
from repro.lfs.superblock import Superblock
from repro.lfs.summary import SegmentSummary, FileInfo
from repro.lfs.inode import Inode, S_IFREG, S_IFDIR
from repro.lfs.ifile import IFile, SegUse, SEG_CLEAN, SEG_DIRTY, SEG_ACTIVE, SEG_CACHED
from repro.lfs.filesystem import LFS, LFSConfig
from repro.lfs.cleaner import Cleaner, GreedyPolicy, CostBenefitPolicy

__all__ = [
    "BLOCK_SIZE", "SEGMENT_SIZE", "BLOCKS_PER_SEG", "UNASSIGNED",
    "IFILE_INUM", "ROOT_INUM",
    "Superblock", "SegmentSummary", "FileInfo",
    "Inode", "S_IFREG", "S_IFDIR",
    "IFile", "SegUse", "SEG_CLEAN", "SEG_DIRTY", "SEG_ACTIVE", "SEG_CACHED",
    "LFS", "LFSConfig",
    "Cleaner", "GreedyPolicy", "CostBenefitPolicy",
]
