"""Partial-segment summary blocks (paper Table 1).

Each partial segment — the atomic unit of a log append — begins with a
summary block cataloguing its contents: per-file FINFO records describing
the data blocks present, and the device addresses of the inode blocks.
Field sizes follow Table 1 exactly:

    ss_sumsum   4   check sum of summary block
    ss_datasum  4   check sum of data
    ss_next     4   disk address of next segment in log
    ss_create   4   creation time stamp
    ss_nfinfo   2   number of file info structures
    ss_ninos    2   number of inodes in summary
    ss_flags    2   flags; used for directory operations
    ss_pad      2   word alignment
    ...        12   per distinct file + 4 per file block   (FINFO)
    ...         4   per inode block (disk addresses, from the end backward)

``ss_create`` is a 32-bit centisecond virtual timestamp (keeps the Table 1
field width while retaining sub-second ordering).
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional

from repro.errors import ChecksumError, InvalidArgument
from repro.lfs.constants import SUMMARY_MAGIC, UNASSIGNED
from repro.util.checksum import cksum32, cksum_blocks

_HEADER = struct.Struct("<IIIIHHHH")
HEADER_SIZE = _HEADER.size  # 24 bytes

#: ss_flags bit: this partial segment contains directory-operation blocks.
SS_DIROP = 0x01
#: ss_flags bit: this partial segment continues a dirop from the previous one.
SS_CONT = 0x02

FINFO_FIXED = 12      # fi_nblocks + fi_ino + fi_lastlength
PER_BLOCK = 4         # one 32-bit logical block number per described block
PER_INOBLK = 4        # one 32-bit disk address per inode block


def _lbn_to_u32(lbn: int) -> int:
    """Logical block numbers may be negative (indirect blocks)."""
    return lbn & 0xFFFFFFFF


def _u32_to_lbn(value: int) -> int:
    return value - (1 << 32) if value >= (1 << 31) else value


@dataclass
class FileInfo:
    """FINFO: which blocks of one file live in this partial segment."""

    ino: int
    lastlength: int              # bytes valid in the final described block
    blocks: List[int] = field(default_factory=list)   # logical block numbers

    def nbytes(self) -> int:
        return FINFO_FIXED + PER_BLOCK * len(self.blocks)


@dataclass
class SegmentSummary:
    """One partial segment's summary block."""

    next_daddr: int = UNASSIGNED     # ss_next: next segment in the threaded log
    create: float = 0.0              # seconds of virtual time
    flags: int = 0
    finfos: List[FileInfo] = field(default_factory=list)
    inode_daddrs: List[int] = field(default_factory=list)
    datasum: int = 0

    # -- sizing -----------------------------------------------------------

    def bytes_needed(self) -> int:
        """Summary bytes this catalogue occupies."""
        return (HEADER_SIZE
                + sum(fi.nbytes() for fi in self.finfos)
                + PER_INOBLK * len(self.inode_daddrs))

    def fits(self, summary_size: int, extra_file: bool = False,
             extra_blocks: int = 0, extra_inoblk: bool = False) -> bool:
        """Would the summary still fit after adding the given items?"""
        need = self.bytes_needed() + extra_blocks * PER_BLOCK
        if extra_file:
            need += FINFO_FIXED
        if extra_inoblk:
            need += PER_INOBLK
        return need <= summary_size

    def ndata_blocks(self) -> int:
        return sum(len(fi.blocks) for fi in self.finfos)

    # -- content checksums ---------------------------------------------------

    def compute_datasum(self, blocks: List[bytes]) -> None:
        """Checksum the described blocks (first-word probe, like LFS)."""
        self.datasum = cksum_blocks(blocks)

    def verify_datasum(self, blocks: List[bytes]) -> bool:
        return self.datasum == cksum_blocks(blocks)

    # -- serialisation ---------------------------------------------------------

    def pack(self, summary_size: int) -> bytes:
        """Serialise into exactly ``summary_size`` bytes."""
        if self.bytes_needed() > summary_size:
            raise InvalidArgument(
                f"summary needs {self.bytes_needed()}B > {summary_size}B")
        body = bytearray(summary_size)
        create_cs = int(self.create * 100) & 0xFFFFFFFF
        _HEADER.pack_into(body, 0, 0, self.datasum,
                          self.next_daddr, create_cs,
                          len(self.finfos), len(self.inode_daddrs),
                          self.flags, SUMMARY_MAGIC & 0xFFFF)
        offset = HEADER_SIZE
        for fi in self.finfos:
            struct.pack_into("<III", body, offset, len(fi.blocks),
                             fi.ino, fi.lastlength)
            offset += FINFO_FIXED
            for lbn in fi.blocks:
                struct.pack_into("<I", body, offset, _lbn_to_u32(lbn))
                offset += PER_BLOCK
        # Inode block addresses grow backward from the end of the summary.
        tail = summary_size
        for daddr in self.inode_daddrs:
            tail -= PER_INOBLK
            struct.pack_into("<I", body, tail, daddr)
        # ss_sumsum covers everything except itself.
        sumsum = cksum32(bytes(body[4:]))
        struct.pack_into("<I", body, 0, sumsum)
        return bytes(body)

    @classmethod
    def unpack(cls, data: bytes, summary_size: int,
               verify: bool = True) -> "SegmentSummary":
        """Parse a summary; raises ChecksumError on a torn/blank summary."""
        if len(data) < summary_size:
            raise InvalidArgument("short summary buffer")
        data = data[:summary_size]
        (sumsum, datasum, next_daddr, create_cs,
         nfinfo, ninoblk, flags, magic) = _HEADER.unpack_from(data, 0)
        if magic != (SUMMARY_MAGIC & 0xFFFF):
            raise ChecksumError("summary magic mismatch (not a summary)")
        if verify and sumsum != cksum32(data[4:]):
            raise ChecksumError("summary checksum mismatch (torn write)")
        summary = cls(next_daddr=next_daddr, create=create_cs / 100.0,
                      flags=flags, datasum=datasum)
        offset = HEADER_SIZE
        for _ in range(nfinfo):
            nblocks, ino, lastlength = struct.unpack_from("<III", data, offset)
            offset += FINFO_FIXED
            blocks = []
            for _b in range(nblocks):
                (raw,) = struct.unpack_from("<I", data, offset)
                blocks.append(_u32_to_lbn(raw))
                offset += PER_BLOCK
            summary.finfos.append(FileInfo(ino, lastlength, blocks))
        tail = summary_size
        for _ in range(ninoblk):
            tail -= PER_INOBLK
            (daddr,) = struct.unpack_from("<I", data, tail)
            summary.inode_daddrs.append(daddr)
        return summary

    @classmethod
    def try_unpack(cls, data: bytes,
                   summary_size: int) -> Optional["SegmentSummary"]:
        """Parse if valid, else None (roll-forward's stop condition)."""
        try:
            return cls.unpack(data, summary_size)
        except (ChecksumError, InvalidArgument, struct.error):
            return None
