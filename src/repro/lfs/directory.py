"""Directory content: packed variable-length entries.

Directories are regular files whose data blocks hold (inum, name) records.
BSD filesystems do not update directory access times on normal lookups —
the paper relies on this so the namespace-locality migrator can walk trees
without perturbing the very timestamps it ranks by (§5.3).
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from repro.errors import FileExists, FileNotFound, InvalidArgument

_ENTRY_HDR = struct.Struct("<IH")  # inum, namelen
MAX_NAME = 255


def _validate_name(name: str) -> bytes:
    if not name or name in (".", ".."):
        pass  # "." and ".." are legal entries; empty is not
    if not name:
        raise InvalidArgument("empty file name")
    raw = name.encode("utf-8")
    if len(raw) > MAX_NAME:
        raise InvalidArgument(f"name too long ({len(raw)} > {MAX_NAME})")
    if "/" in name:
        raise InvalidArgument("name may not contain '/'")
    return raw


def pack_entries(entries: Dict[str, int]) -> bytes:
    """Serialise a name -> inum map into directory file content."""
    out = bytearray()
    for name in sorted(entries):
        raw = _validate_name(name)
        out += _ENTRY_HDR.pack(entries[name], len(raw))
        out += raw
    return bytes(out)


def unpack_entries(data: bytes) -> Dict[str, int]:
    """Parse directory file content back to a name -> inum map."""
    entries: Dict[str, int] = {}
    offset = 0
    while offset + _ENTRY_HDR.size <= len(data):
        inum, namelen = _ENTRY_HDR.unpack_from(data, offset)
        if inum == 0 and namelen == 0:
            break  # zero padding tail
        offset += _ENTRY_HDR.size
        name = data[offset:offset + namelen].decode("utf-8")
        offset += namelen
        entries[name] = inum
    return entries


class Directory:
    """A parsed, mutable directory image."""

    def __init__(self, entries: Dict[str, int] | None = None) -> None:
        self.entries: Dict[str, int] = dict(entries or {})

    @classmethod
    def new(cls, self_inum: int, parent_inum: int) -> "Directory":
        return cls({".": self_inum, "..": parent_inum})

    @classmethod
    def parse(cls, data: bytes) -> "Directory":
        return cls(unpack_entries(data))

    def pack(self) -> bytes:
        return pack_entries(self.entries)

    def lookup(self, name: str) -> int:
        inum = self.entries.get(name)
        if inum is None:
            raise FileNotFound(name)
        return inum

    def add(self, name: str, inum: int) -> None:
        _validate_name(name)
        if name in self.entries:
            raise FileExists(name)
        self.entries[name] = inum

    def remove(self, name: str) -> int:
        inum = self.entries.pop(name, None)
        if inum is None:
            raise FileNotFound(name)
        return inum

    def names(self) -> List[str]:
        """Entries excluding '.' and '..'."""
        return sorted(n for n in self.entries if n not in (".", ".."))

    def is_empty(self) -> bool:
        return not self.names()

    def items(self) -> List[Tuple[str, int]]:
        return [(n, self.entries[n]) for n in self.names()]
