"""Mounting and roll-forward recovery.

"During recovery the threaded log is used to roll forward from the last
checkpoint ... When an incomplete partial segment is found, recovery is
complete and the state of the filesystem is the state as of the last
complete partial segment" (paper §3).

The stop conditions are: an unparseable or checksum-failing summary, a
summary whose creation stamp predates the checkpoint (a stale summary from
an earlier life of the segment), a failing data checksum, or an address
that leaves the managed space.
"""

from __future__ import annotations

from typing import Optional

from repro.blockdev.base import BlockDevice, CPUModel
from repro.errors import AddressError
from repro.lfs.constants import BLOCK_SIZE, IFILE_INUM, UNASSIGNED
from repro.lfs.ifile import IFile, IMapEntry, SEG_ACTIVE, SEG_CLEAN, SEG_DIRTY
from repro.lfs.inode import Inode, find_inode_in_block, unpack_inode_block
from repro.lfs.summary import SegmentSummary
from repro.lfs.superblock import Superblock
from repro.sim.actor import Actor

#: ss_create is stored in centiseconds; allow that much rounding slack
#: when comparing against the checkpoint's float timestamp.
_STAMP_SLACK = 0.011


def read_file_raw(fs, ino: Inode, actor: Actor) -> bytes:
    """Read a file's content straight from the device (no cache warm-up)."""
    out = bytearray()
    nblocks = (ino.size + BLOCK_SIZE - 1) // BLOCK_SIZE
    for lbn in range(nblocks):
        daddr = fs.bmap(ino, lbn, actor)
        if daddr == UNASSIGNED:
            out += bytes(BLOCK_SIZE)
        else:
            out += fs.dev_read(actor, daddr, 1)
    return bytes(out[:ino.size])


def mount(cls, device: BlockDevice, config=None,
          cpu: Optional[CPUModel] = None,
          actor: Optional[Actor] = None):
    """Mount an existing LFS from ``device`` (used by ``LFS.mount``)."""
    fs = cls(device, config, cpu, actor)
    actor = fs.actor
    fs.sb = Superblock.unpack(fs.dev_read(actor, Superblock.LOCATION, 1))
    # Geometry lives on the medium, not in the caller's config.
    fs.config.segment_size = fs.sb.segment_size
    ckpt = fs.sb.latest_checkpoint()

    inoblk = fs.dev_read(actor, ckpt.ifile_daddr, 1)
    fs.ifile_inode = find_inode_in_block(inoblk, IFILE_INUM)
    fs.segwriter._ifile_inode_daddr = ckpt.ifile_daddr
    content = read_file_raw(fs, fs.ifile_inode, actor)
    fs.ifile = IFile.deserialize(content)

    fs._set_log_position(ckpt.log_daddr)
    fs._mounted = True
    roll_forward(fs, ckpt.log_daddr, ckpt.timestamp, actor)

    # Exactly one segment is active: the log tail recovery settled on.
    # (Roll-forward may have moved the tail past the checkpoint-era
    # active segment, whose stale flag must not survive.)
    for seg in fs.ifile.segs:
        seg.flags &= ~SEG_ACTIVE
    seg = fs.seguse_for(fs.cur_segno)
    seg.flags = (seg.flags & ~SEG_CLEAN) | SEG_DIRTY | SEG_ACTIVE
    return fs


def roll_forward(fs, start_daddr: int, since: float, actor: Actor) -> int:
    """Replay complete partial segments written after the checkpoint.

    Returns the number of partial segments applied and leaves the
    filesystem's log position at the first unreplayable address.
    """
    pos = start_daddr
    applied = 0
    while True:
        if pos == UNASSIGNED or not _plausible_position(fs, pos):
            break
        try:
            raw = fs.dev_read(actor, pos, 1)
        except AddressError:
            break
        summary = SegmentSummary.try_unpack(raw, fs.config.summary_size)
        if summary is None:
            break
        if summary.create < since - _STAMP_SLACK:
            break  # stale summary from a previous life of this segment
        ndata = summary.ndata_blocks()
        ninode = len(summary.inode_daddrs)
        blocks = []
        if ndata + ninode:
            try:
                payload = fs.dev_read(actor, pos + 1, ndata + ninode)
            except AddressError:
                break
            blocks = [payload[i * BLOCK_SIZE:(i + 1) * BLOCK_SIZE]
                      for i in range(ndata + ninode)]
        if not summary.verify_datasum(blocks):
            break  # torn partial segment: recovery stops here

        _apply_partial(fs, pos, summary, blocks, ndata)
        applied += 1
        pos = summary.next_daddr

    if pos != UNASSIGNED and _plausible_position(fs, pos):
        fs._set_log_position(pos)
    return applied


def _plausible_position(fs, daddr: int) -> bool:
    segno = fs.segno_of(daddr)
    if not fs.is_disk_segno(segno):
        return False
    offset = daddr - fs.seg_base(segno)
    return 0 <= offset < fs.config.blocks_per_seg


def _apply_partial(fs, pos: int, summary: SegmentSummary,
                   blocks, ndata: int) -> None:
    """Fold one replayed partial segment into the in-memory state."""
    for idx, daddr in enumerate(summary.inode_daddrs):
        blk = blocks[ndata + idx]
        for ino in unpack_inode_block(blk):
            if ino.inum == IFILE_INUM:
                fs.ifile_inode = ino
                fs.segwriter._ifile_inode_daddr = daddr
                continue
            entry = fs.ifile.imap.get(ino.inum)
            if entry is None:
                entry = IMapEntry(version=ino.gen)
                fs.ifile.imap[ino.inum] = entry
            entry.daddr = daddr
            fs._inodes[ino.inum] = ino
            # The checkpointed ifile predates this inode: advance the
            # allocator so post-recovery creates cannot collide with it.
            if ino.inum >= fs.ifile._next_inum:
                fs.ifile._next_inum = ino.inum + 1
    segno = fs.segno_of(pos)
    seg = fs.seguse_for(segno)
    seg.flags = (seg.flags & ~SEG_CLEAN) | SEG_DIRTY
    # Liveness is re-added optimistically; stale prior copies are left to
    # the cleaner, whose bmapv verification is authoritative anyway.
    seg.live_bytes += ndata * BLOCK_SIZE + 128 * len(summary.inode_daddrs)
    seg.lastmod = max(seg.lastmod, summary.create)
