"""A conservative multi-actor scheduler for generator-based tasks.

Tasks are Python generators; each ``yield`` marks a scheduling point (the
task just completed one logical step, typically one I/O).  The scheduler
always resumes the ready task whose actor's local clock is smallest, which
guarantees that occupancy windows on shared resources are claimed in
globally non-decreasing time order — the standard conservative
discrete-event discipline — so contention results are deterministic and
independent of task creation order beyond explicit tie-breaking.

Yielding :data:`WAIT` parks the task until any *other* task has stepped;
if every live task is parked the run is deadlocked and we raise.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Generator, List, Optional, Tuple

from repro.errors import ReproError
from repro.sim.actor import Actor


#: Sentinel a task yields when it cannot make progress yet.
WAIT = object()


class DeadlockError(ReproError):
    """Every live task is waiting; nothing can ever run again."""


class _Task:
    __slots__ = ("actor", "gen", "finished", "waiting", "order")

    def __init__(self, actor: Actor, gen: Generator[Any, None, None],
                 order: int) -> None:
        self.actor = actor
        self.gen = gen
        self.finished = False
        self.waiting = False
        self.order = order


class Scheduler:
    """Runs a set of (actor, generator) tasks to completion."""

    def __init__(self) -> None:
        self._tasks: List[_Task] = []

    def add(self, actor: Actor,
            task: Generator[Any, None, None]
            | Callable[[], Generator[Any, None, None]]) -> None:
        """Register a task.  ``task`` may be a generator or a factory."""
        gen = task() if callable(task) else task
        self._tasks.append(_Task(actor, gen, order=len(self._tasks)))

    def run(self, max_steps: int = 50_000_000) -> None:
        """Interleave all tasks until every one finishes."""
        steps = 0
        while True:
            candidates = [t for t in self._tasks if not t.finished and not t.waiting]
            if not candidates:
                live = [t for t in self._tasks if not t.finished]
                if not live:
                    return
                raise DeadlockError(
                    "all live tasks are waiting: "
                    + ", ".join(t.actor.name for t in live))
            task = min(candidates, key=lambda t: (t.actor.time, t.order))
            try:
                result = next(task.gen)
            except StopIteration:
                task.finished = True
                self._unpark()
                continue
            if result is WAIT:
                task.waiting = True
            else:
                self._unpark()
            steps += 1
            if steps > max_steps:
                raise ReproError(f"scheduler exceeded {max_steps} steps")

    def _unpark(self) -> None:
        for task in self._tasks:
            task.waiting = False


class TimedQueue:
    """A FIFO queue whose items carry the virtual time they became ready.

    The migrator hands completed staging segments to the I/O server through
    one of these; the consumer's clock is advanced to the item's ready time
    so a consumer can never act on data "before" it exists.
    """

    def __init__(self, name: str = "queue") -> None:
        self.name = name
        self._items: Deque[Tuple[float, Any]] = deque()
        self.put_count = 0
        self.get_count = 0
        self.wait_seconds = 0.0  # consumer idle time attributable to the queue

    def __len__(self) -> int:
        return len(self._items)

    def put(self, actor: Actor, item: Any) -> None:
        """Enqueue ``item``, stamped ready at the producer's current time."""
        self._items.append((actor.time, item))
        self.put_count += 1

    def get(self, actor: Actor) -> Optional[Any]:
        """Dequeue the oldest item, or return None if the queue is empty.

        Advances the consumer's clock to the item's ready time and charges
        the idle gap to :attr:`wait_seconds`.
        """
        if not self._items:
            return None
        ready, item = self._items.popleft()
        if ready > actor.time:
            self.wait_seconds += ready - actor.time
            actor.sleep_until(ready)
        self.get_count += 1
        return item

    def peek_ready_time(self) -> Optional[float]:
        """Ready time of the head item, or None if empty."""
        if not self._items:
            return None
        return self._items[0][0]
