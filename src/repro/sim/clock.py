"""A monotonically advancing virtual clock."""

from __future__ import annotations


class VirtualClock:
    """Monotonic virtual time source.

    Single-actor code paths (e.g. one benchmark process doing file I/O)
    drive one clock directly; multi-actor runs give each actor its own
    clock and let resources serialise them.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, duration: float) -> float:
        """Advance by ``duration`` seconds and return the new time."""
        if duration < 0:
            raise ValueError(f"cannot advance clock by {duration!r} seconds")
        self._now += duration
        return self._now

    def advance_to(self, when: float) -> float:
        """Advance to absolute time ``when`` (no-op if already past it)."""
        if when > self._now:
            self._now = when
        return self._now

    def reset(self, start: float = 0.0) -> None:
        """Reset the clock (only sensible between independent runs)."""
        self._now = float(start)

    def __repr__(self) -> str:
        return f"VirtualClock(now={self._now:.6f})"
