"""Timeline resources: serially-reusable hardware shared between actors.

A :class:`TimelineResource` models anything only one operation can use at a
time — a disk arm, a SCSI bus, a jukebox robot picker, a tape drive head.
Occupancy is a window ``[start, end)`` on the virtual timeline; an actor
asking to occupy a resource is pushed out to ``max(actor.time,
resource.next_free)``, which is exactly how arm contention between the
migrator and the I/O server shows up in Table 6, and how the
non-disconnecting autochanger "hogs" the SCSI bus during media swaps
(paper section 7).
"""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.sim.actor import Actor


class TimelineResource:
    """A serially-reusable resource with utilisation accounting."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.next_free = 0.0
        self.busy_seconds = 0.0
        self.op_count = 0
        self._first_busy: float | None = None
        self._last_busy = 0.0

    def occupy(self, actor: Actor, duration: float) -> Tuple[float, float]:
        """Occupy the resource for ``duration`` seconds on behalf of ``actor``.

        Returns the ``(start, end)`` window.  The actor's clock is advanced
        to ``end`` — the operation is synchronous from the actor's point of
        view.
        """
        if duration < 0:
            raise ValueError("occupancy duration must be non-negative")
        start = max(actor.time, self.next_free)
        end = start + duration
        self.next_free = end
        self.busy_seconds += duration
        self.op_count += 1
        if self._first_busy is None:
            self._first_busy = start
        self._last_busy = max(self._last_busy, end)
        actor.sleep_until(end)
        return start, end

    def utilization(self) -> float:
        """Busy fraction over the resource's active span (0.0 if unused)."""
        if self._first_busy is None:
            return 0.0
        span = self._last_busy - self._first_busy
        if span <= 0:
            return 1.0
        return min(1.0, self.busy_seconds / span)

    def reset_stats(self) -> None:
        """Clear accounting without releasing the timeline position."""
        self.busy_seconds = 0.0
        self.op_count = 0
        self._first_busy = None
        self._last_busy = self.next_free

    def __repr__(self) -> str:
        return f"TimelineResource({self.name!r}, next_free={self.next_free:.6f})"


def occupy_all(actor: Actor, resources: Iterable[TimelineResource],
               duration: float) -> Tuple[float, float]:
    """Occupy several resources simultaneously (e.g. SCSI bus + disk arm).

    The operation starts when the actor *and every resource* are free and
    holds all of them for its full duration; this models a non-disconnecting
    SCSI transaction.
    """
    if duration < 0:
        raise ValueError("occupancy duration must be non-negative")
    resources = list(resources)
    start = actor.time
    for resource in resources:
        start = max(start, resource.next_free)
    end = start + duration
    for resource in resources:
        resource.next_free = end
        resource.busy_seconds += duration
        resource.op_count += 1
        if resource._first_busy is None:
            resource._first_busy = start
        resource._last_busy = max(resource._last_busy, end)
    actor.sleep_until(end)
    return start, end
