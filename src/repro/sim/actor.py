"""Actors: logical processes with local virtual clocks and time accounts."""

from __future__ import annotations

import weakref
from typing import Dict, Optional

from repro.sim.clock import VirtualClock

#: obj -> owning Actor.  The runtime counterpart of the HL012 static
#: rule: one actor's code must not mutate objects another actor owns.
#: Weak on both sides so tagging never extends a lifetime.
_OWNERS: "weakref.WeakKeyDictionary[object, weakref.ReferenceType]" = \
    weakref.WeakKeyDictionary()


def owner_of(obj: object) -> "Optional[Actor]":
    """The actor that owns ``obj``, or None if untagged (or dead)."""
    ref = _OWNERS.get(obj)
    return ref() if ref is not None else None


class TimeAccount:
    """Accumulates virtual time into named categories.

    Table 4 of the paper breaks migration elapsed time into *Footprint
    write*, *I/O server read*, and *migrator queuing* buckets; a
    ``TimeAccount`` is how our pipeline produces the same breakdown.

    The local bucket map is authoritative; each charge is also mirrored
    into the process-wide metrics registry (``time_account_seconds_total``)
    so snapshots see the same numbers the bench tables report.
    """

    def __init__(self) -> None:
        self._buckets: Dict[str, float] = {}

    def charge(self, category: str, seconds: float) -> None:
        """Add ``seconds`` to ``category``."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self._buckets[category] = self._buckets.get(category, 0.0) + seconds
        from repro import obs
        obs.counter("time_account_seconds_total",
                    "virtual seconds charged to accounting categories",
                    ("category",)).labels(category=category).inc(seconds)

    def get(self, category: str) -> float:
        """Total seconds charged to ``category`` (0.0 if never charged)."""
        return self._buckets.get(category, 0.0)

    def total(self) -> float:
        """Sum over all categories."""
        return sum(self._buckets.values())

    def breakdown(self) -> Dict[str, float]:
        """A copy of the category -> seconds map."""
        return dict(self._buckets)

    def percentages(self) -> Dict[str, float]:
        """Category -> percentage of the account total (paper Table 4 form)."""
        total = self.total()
        if total <= 0:
            return {key: 0.0 for key in self._buckets}
        return {key: 100.0 * val / total for key, val in self._buckets.items()}

    def clear(self) -> None:
        """Drop all charges."""
        self._buckets.clear()


class Actor:
    """A logical process: a name, a local clock, and a time account.

    The service process, I/O server, migrator, cleaner, and the benchmark's
    foreground "application" are each one actor.  Device operations advance
    the *calling* actor's clock; shared resources push the start of an
    operation out to when the resource frees up, which is how cross-actor
    contention manifests.
    """

    def __init__(self, name: str, clock: VirtualClock | None = None) -> None:
        self.name = name
        self.clock = clock if clock is not None else VirtualClock()
        self.account = TimeAccount()
        # The account is always freshly built, so it is unambiguously
        # ours; an explicitly passed clock may be shared with another
        # actor, so only a self-constructed clock is tagged.
        self.own(self.account)
        if clock is None:
            self.own(self.clock)

    def own(self, obj: object) -> object:
        """Tag ``obj`` as owned by this actor; returns ``obj``.

        Ownership is advisory bookkeeping for sanitizers and debug
        assertions (see HL012 in docs/ANALYSIS.md for the static rule it
        mirrors); re-tagging transfers ownership.
        """
        _OWNERS[obj] = weakref.ref(self)
        return obj

    def disown(self, obj: object) -> None:
        """Drop this actor's ownership tag on ``obj`` (no-op if another
        actor owns it or it was never tagged)."""
        ref = _OWNERS.get(obj)
        if ref is not None and ref() is self:
            del _OWNERS[obj]

    @property
    def time(self) -> float:
        """The actor's local virtual time."""
        return self.clock.now

    def sleep(self, duration: float) -> None:
        """Consume ``duration`` seconds of local time (pure delay)."""
        self.clock.advance(duration)

    def sleep_until(self, when: float) -> None:
        """Advance local time to ``when`` if it is in the future."""
        self.clock.advance_to(when)

    def __repr__(self) -> str:
        return f"Actor({self.name!r}, t={self.time:.6f})"
