"""Actors: logical processes with local virtual clocks and time accounts."""

from __future__ import annotations

from typing import Dict

from repro.sim.clock import VirtualClock


class TimeAccount:
    """Accumulates virtual time into named categories.

    Table 4 of the paper breaks migration elapsed time into *Footprint
    write*, *I/O server read*, and *migrator queuing* buckets; a
    ``TimeAccount`` is how our pipeline produces the same breakdown.

    The local bucket map is authoritative; each charge is also mirrored
    into the process-wide metrics registry (``time_account_seconds_total``)
    so snapshots see the same numbers the bench tables report.
    """

    def __init__(self) -> None:
        self._buckets: Dict[str, float] = {}

    def charge(self, category: str, seconds: float) -> None:
        """Add ``seconds`` to ``category``."""
        if seconds < 0:
            raise ValueError("cannot charge negative time")
        self._buckets[category] = self._buckets.get(category, 0.0) + seconds
        from repro import obs
        obs.counter("time_account_seconds_total",
                    "virtual seconds charged to accounting categories",
                    ("category",)).labels(category=category).inc(seconds)

    def get(self, category: str) -> float:
        """Total seconds charged to ``category`` (0.0 if never charged)."""
        return self._buckets.get(category, 0.0)

    def total(self) -> float:
        """Sum over all categories."""
        return sum(self._buckets.values())

    def breakdown(self) -> Dict[str, float]:
        """A copy of the category -> seconds map."""
        return dict(self._buckets)

    def percentages(self) -> Dict[str, float]:
        """Category -> percentage of the account total (paper Table 4 form)."""
        total = self.total()
        if total <= 0:
            return {key: 0.0 for key in self._buckets}
        return {key: 100.0 * val / total for key, val in self._buckets.items()}

    def clear(self) -> None:
        """Drop all charges."""
        self._buckets.clear()


class Actor:
    """A logical process: a name, a local clock, and a time account.

    The service process, I/O server, migrator, cleaner, and the benchmark's
    foreground "application" are each one actor.  Device operations advance
    the *calling* actor's clock; shared resources push the start of an
    operation out to when the resource frees up, which is how cross-actor
    contention manifests.
    """

    def __init__(self, name: str, clock: VirtualClock | None = None) -> None:
        self.name = name
        self.clock = clock if clock is not None else VirtualClock()
        self.account = TimeAccount()

    @property
    def time(self) -> float:
        """The actor's local virtual time."""
        return self.clock.now

    def sleep(self, duration: float) -> None:
        """Consume ``duration`` seconds of local time (pure delay)."""
        self.clock.advance(duration)

    def sleep_until(self, when: float) -> None:
        """Advance local time to ``when`` if it is in the future."""
        self.clock.advance_to(when)

    def __repr__(self) -> str:
        return f"Actor({self.name!r}, t={self.time:.6f})"
