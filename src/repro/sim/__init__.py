"""Deterministic virtual-time simulation kernel.

The paper's system is a 4.4BSD kernel plus three user-level processes
(service process, I/O server, migrator) sharing SCSI buses and disk arms.
This package replaces wall-clock concurrency with a deterministic model:

* an :class:`Actor` owns a *local* virtual clock,
* a :class:`TimelineResource` (a disk arm, a SCSI bus, a robot picker)
  serialises occupancy windows across actors,
* a :class:`Scheduler` interleaves generator-based tasks, always advancing
  the task whose actor's clock is furthest behind, which reproduces
  contention effects (e.g. Table 6's disk-arm contention) reproducibly.

All times are float seconds of virtual time.
"""

from repro.sim.clock import VirtualClock
from repro.sim.resources import TimelineResource, occupy_all
from repro.sim.actor import Actor, TimeAccount, owner_of
from repro.sim.scheduler import Scheduler, WAIT, TimedQueue
from repro.sim.stats import RateMeter, PhaseTimer

__all__ = [
    "VirtualClock",
    "TimelineResource",
    "occupy_all",
    "Actor",
    "TimeAccount",
    "owner_of",
    "Scheduler",
    "WAIT",
    "TimedQueue",
    "RateMeter",
    "PhaseTimer",
]
