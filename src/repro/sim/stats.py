"""Measurement helpers: throughput meters and phase timers."""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro import obs
from repro.sim.actor import Actor


class RateMeter:
    """Accumulates (bytes, seconds) and reports throughput.

    Mirrors how the paper computes its throughput columns: total data
    volume divided by elapsed virtual time.  Local fields stay
    authoritative; measurements are mirrored into the metrics registry
    under ``rate_meter_bytes_total`` / ``rate_meter_seconds_total``.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self.bytes = 0
        self.seconds = 0.0

    def add(self, nbytes: int, seconds: float) -> None:
        """Record ``nbytes`` transferred over ``seconds``."""
        if nbytes < 0 or seconds < 0:
            raise ValueError("negative measurement")
        self.bytes += nbytes
        self.seconds += seconds
        if self.name:
            obs.counter("rate_meter_bytes_total",
                        "bytes accumulated by named rate meters",
                        ("meter",)).labels(meter=self.name).inc(nbytes)
            obs.counter("rate_meter_seconds_total",
                        "seconds accumulated by named rate meters",
                        ("meter",)).labels(meter=self.name).inc(seconds)

    def rate(self) -> float:
        """Bytes per second (0.0 if no time elapsed)."""
        if self.seconds <= 0:
            return 0.0
        return self.bytes / self.seconds


class PhaseTimer:
    """Records named phases of an actor's run as (start, end) windows.

    Table 6 splits the migration run into an "arm contention" phase (while
    the migrator is still staging) and a "no contention" phase (I/O server
    draining alone); a PhaseTimer captures those boundaries.
    """

    def __init__(self, actor: Actor) -> None:
        self._actor = actor
        self._open: Dict[str, float] = {}
        self.phases: List[Tuple[str, float, float]] = []

    def begin(self, name: str) -> None:
        """Open phase ``name`` at the actor's current time."""
        if name in self._open:
            raise ValueError(f"phase {name!r} already open")
        self._open[name] = self._actor.time

    def end(self, name: str) -> float:
        """Close phase ``name``; returns its duration."""
        start = self._open.pop(name, None)
        if start is None:
            raise ValueError(f"phase {name!r} was never begun")
        end = self._actor.time
        self.phases.append((name, start, end))
        obs.histogram("phase_seconds", "closed phase-timer windows",
                      ("phase",)).labels(phase=name).observe(end - start)
        return end - start

    def duration(self, name: str) -> float:
        """Total duration across all closed phases called ``name``."""
        return sum(end - start for phase, start, end in self.phases
                   if phase == name)
