"""Simulated block devices with calibrated timing models.

The paper's testbed (HP 9000/370, DEC RZ57/RZ58 SCSI disks, an HP-IB
HP7958A, and an HP 6300 magneto-optic autochanger) is replaced by
data-bearing device simulators whose sequential rates are calibrated to the
paper's Table 5 raw measurements.  Every device charges virtual time to the
calling actor and occupies shared :class:`~repro.sim.TimelineResource`
objects (SCSI bus, disk arm, robot picker) so cross-actor contention
emerges the same way it did on the real hardware.
"""

from repro.blockdev.base import (BlockStore, BlockDevice, DataStore,
                                 DeviceStats, CPUModel, make_store)
from repro.blockdev.bus import SCSIBus
from repro.blockdev.datapath import (ExtentRef, bytes_copied_total,
                                     count_copy, set_store_mode, store_mode)
from repro.blockdev.extent import ExtentStore
from repro.blockdev.geometry import DiskProfile, seek_time
from repro.blockdev.disk import DiskDevice
from repro.blockdev.mo import MOPlatter, MODrive
from repro.blockdev.tape import TapeVolume, TapeDrive
from repro.blockdev.jukebox import Jukebox
from repro.blockdev.striped import ConcatDevice
from repro.blockdev import profiles

__all__ = [
    "BlockStore", "BlockDevice", "DataStore", "DeviceStats", "CPUModel",
    "ExtentRef", "ExtentStore", "make_store",
    "bytes_copied_total", "count_copy", "set_store_mode", "store_mode",
    "SCSIBus",
    "DiskProfile", "seek_time",
    "DiskDevice",
    "MOPlatter", "MODrive",
    "TapeVolume", "TapeDrive",
    "Jukebox",
    "ConcatDevice",
    "profiles",
]
