"""A magnetic disk: one arm, calibrated streaming rates, optional SCSI bus."""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.blockdev.base import BlockDevice
from repro.blockdev.bus import SCSIBus
from repro.blockdev.datapath import Buffer, ExtentRef, refs_nbytes
from repro.blockdev.geometry import DiskProfile
from repro.sim.actor import Actor
from repro.sim.resources import TimelineResource, occupy_all


class DiskDevice(BlockDevice):
    """A single-spindle magnetic disk.

    The arm is a :class:`TimelineResource`; when two actors (say the
    migrator and the I/O server) interleave operations on one disk, every
    operation that does not continue the *immediately preceding* physical
    position pays seek + rotation, which is the entire story behind the
    paper's Table 6 "disk arm contention" phase.
    """

    def __init__(self, profile: DiskProfile, name: Optional[str] = None,
                 bus: Optional[SCSIBus] = None) -> None:
        super().__init__(name or profile.name, profile.capacity_blocks,
                         profile.block_size)
        self.profile = profile
        self.bus = bus
        self.arm = TimelineResource(f"{self.name}.arm")
        # Physical continuity state for streaming detection.
        self._last_end_blk: Optional[int] = None
        self._last_end_time = float("-inf")

    # -- timing -----------------------------------------------------------

    def _positioning(self, actor: Actor, blkno: int) -> float:
        """Seek + rotation cost for an op starting at ``blkno``, or 0 if
        the head can stream straight into it."""
        streams = (
            self._last_end_blk is not None
            and blkno == self._last_end_blk
            and actor.time - self._last_end_time <= self.profile.streaming_gap
        )
        if streams:
            return 0.0
        if self._last_end_blk is None:
            seek = self.profile.avg_seek
        elif blkno == self._last_end_blk:
            # Sequential continuation that arrived too late: the sector
            # has rotated past — pay a blown revolution, but no seek.
            return self.profile.rotation_time
        else:
            seek = self.profile.seek(self._last_end_blk, blkno)
        return seek + self.profile.avg_rotational_latency

    def _do_io(self, actor: Actor, blkno: int, nbytes: int,
               is_write: bool) -> tuple:
        pos = self._positioning(actor, blkno)
        xfer = self.profile.transfer(nbytes, is_write)
        overhead = self.profile.per_op_overhead
        # Seek/rotation holds only the arm (the device disconnects from the
        # bus); the transfer holds arm + bus together.
        self.arm.occupy(actor, overhead + pos)
        if self.bus is not None:
            wire = nbytes / self.bus.bandwidth
            occupy_all(actor, [self.arm, self.bus], max(xfer, wire))
        else:
            self.arm.occupy(actor, xfer)
        self._last_end_blk = blkno + nbytes // self.block_size
        self._last_end_time = actor.time
        return pos, xfer

    # -- BlockDevice API ----------------------------------------------------

    def read(self, actor: Actor, blkno: int, nblocks: int) -> bytes:
        self.store.check_range(blkno, nblocks)
        data = self.store.read(blkno, nblocks)
        pos, xfer = self._do_io(actor, blkno, nblocks * self.block_size,
                                is_write=False)
        self.stats.record("read", len(data), pos, xfer)
        return data

    def write(self, actor: Actor, blkno: int, data: Buffer) -> None:
        nblocks = len(data) // self.block_size
        self.store.check_range(blkno, nblocks)
        self.store.write(blkno, data)
        pos, xfer = self._do_io(actor, blkno, len(data), is_write=True)
        self.stats.record("write", len(data), pos, xfer)

    # -- zero-copy variants (timing identical to read/write) ----------------

    def read_refs(self, actor: Actor, blkno: int,
                  nblocks: int) -> List[ExtentRef]:
        self.store.check_range(blkno, nblocks)
        refs = self.store.read_refs(blkno, nblocks)
        nbytes = nblocks * self.block_size
        pos, xfer = self._do_io(actor, blkno, nbytes, is_write=False)
        self.stats.record("read", nbytes, pos, xfer)
        return refs

    def write_refs(self, actor: Actor, blkno: int,
                   refs: Sequence[ExtentRef]) -> None:
        nbytes = refs_nbytes(refs)
        self.store.check_range(blkno, nbytes // self.block_size)
        self.store.write_refs(blkno, refs)
        pos, xfer = self._do_io(actor, blkno, nbytes, is_write=True)
        self.stats.record("write", nbytes, pos, xfer)

    def writev(self, actor: Actor, blkno: int,
               parts: Sequence[Buffer]) -> None:
        nbytes = sum(len(p) for p in parts)
        self.store.check_range(blkno, nbytes // self.block_size)
        self.store.writev(blkno, parts)
        pos, xfer = self._do_io(actor, blkno, nbytes, is_write=True)
        self.stats.record("write", nbytes, pos, xfer)
