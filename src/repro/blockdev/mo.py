"""Magneto-optic media and drives (the HP 6300 changer's innards).

MO drives behave like slow disks: a seeking head over a rotating platter.
Writes are much slower than reads (Table 5: 451 vs 204 KB/s) because 1993
MO drives needed separate erase + write passes.  The calibrated streaming
rates already fold that in.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.blockdev.bus import SCSIBus
from repro.blockdev.datapath import Buffer, ExtentRef, refs_nbytes
from repro.blockdev.geometry import DiskProfile
from repro.blockdev.jukebox import Drive, RemovableVolume
from repro.sim.actor import Actor
from repro.sim.resources import TimelineResource, occupy_all


class MOPlatter(RemovableVolume):
    """One magneto-optic cartridge side."""


class MODrive(Drive):
    """A magneto-optic reader/writer with disk-like positioning costs."""

    def __init__(self, name: str, profile: DiskProfile,
                 bus: Optional[SCSIBus] = None) -> None:
        super().__init__(name, bus)
        self.profile = profile
        self.head = TimelineResource(f"{name}.head")
        self._last_end_blk: Optional[int] = None
        self._last_end_time = float("-inf")

    def on_load(self, volume: RemovableVolume) -> None:
        super().on_load(volume)
        self._last_end_blk = None  # fresh platter: no positioning history
        self._last_end_time = float("-inf")

    def _positioning(self, actor: Actor, blkno: int) -> float:
        streams = (
            self._last_end_blk is not None
            and blkno == self._last_end_blk
            and actor.time - self._last_end_time <= self.profile.streaming_gap
        )
        if streams:
            return 0.0
        if self._last_end_blk is None:
            seek = self.profile.avg_seek
        elif blkno == self._last_end_blk:
            return self.profile.rotation_time  # blown revolution, no seek
        else:
            seek = self.profile.seek(self._last_end_blk, blkno)
        return seek + self.profile.avg_rotational_latency

    def _do_io(self, actor: Actor, blkno: int, nbytes: int,
               is_write: bool) -> tuple:
        pos = self._positioning(actor, blkno)
        xfer = self.profile.transfer(nbytes, is_write)
        self.head.occupy(actor, self.profile.per_op_overhead + pos)
        if self.bus is not None:
            wire = nbytes / self.bus.bandwidth
            occupy_all(actor, [self.head, self.bus], max(xfer, wire))
        else:
            self.head.occupy(actor, xfer)
        nblocks = nbytes // self.profile.block_size
        self._last_end_blk = blkno + nblocks
        self._last_end_time = actor.time
        return pos, xfer

    def read(self, actor: Actor, blkno: int, nblocks: int) -> bytes:
        volume = self.require_loaded()
        data = volume.store.read(blkno, nblocks)
        pos, xfer = self._do_io(actor, blkno, nblocks * volume.block_size,
                                is_write=False)
        self.stats.record("read", len(data), pos, xfer)
        return data

    def write(self, actor: Actor, blkno: int, data: Buffer) -> None:
        volume = self.require_loaded()
        nblocks = len(data) // volume.block_size
        self._pre_write(volume, blkno, nblocks)
        volume.store.write(blkno, data)
        pos, xfer = self._do_io(actor, blkno, len(data), is_write=True)
        self.stats.record("write", len(data), pos, xfer)

    # -- zero-copy variants (timing identical to read/write) ----------------

    def read_refs(self, actor: Actor, blkno: int,
                  nblocks: int) -> List[ExtentRef]:
        volume = self.require_loaded()
        refs = volume.store.read_refs(blkno, nblocks)
        nbytes = nblocks * volume.block_size
        pos, xfer = self._do_io(actor, blkno, nbytes, is_write=False)
        self.stats.record("read", nbytes, pos, xfer)
        return refs

    def write_refs(self, actor: Actor, blkno: int,
                   refs: Sequence[ExtentRef]) -> None:
        volume = self.require_loaded()
        nbytes = refs_nbytes(refs)
        nblocks = nbytes // volume.block_size
        self._pre_write(volume, blkno, nblocks)
        volume.store.write_refs(blkno, refs)
        pos, xfer = self._do_io(actor, blkno, nbytes, is_write=True)
        self.stats.record("write", nbytes, pos, xfer)
