"""Robotic media changers: removable volumes, drives, and the picker.

This models the HP 6300 magneto-optic autochanger (2 drives, 32
cartridges), the 600-cartridge Metrum tape unit, and the Sony WORM jukebox
from the paper's Sequoia hardware inventory.  The robot picker is a shared
timeline resource; a volume change costs :attr:`Jukebox.swap_time` (13.5 s
measured in Table 5) and — faithfully to the paper's complaint about the
simple device driver — *hogs the SCSI bus* for the whole swap unless
``hog_bus_on_swap`` is disabled.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.blockdev.base import DeviceStats, make_store
from repro.blockdev.bus import SCSIBus
from repro.blockdev.datapath import (Buffer, ExtentRef, materialize_refs,
                                     ref_of)
from repro.errors import (DriveBusy, EndOfMedium, NoSuchVolume,
                          ReadOnlyMedium, VolumeNotLoaded)
from repro.faults.health import VolumeHealth
from repro.sim.actor import Actor
from repro.sim.resources import TimelineResource
from repro.util.lru import LRUTracker


class RemovableVolume:
    """One piece of removable media: an MO platter or a tape cartridge.

    ``effective_capacity_bytes`` may be below the nominal capacity to model
    device-level compression falling short of expectations (paper §6.3) or
    the benchmarks' artificial 40 MB-per-platter constraint (§7).  Writes
    past the effective capacity raise ``EndOfMedium`` from the drive.
    """

    def __init__(self, volume_id: int, capacity_bytes: int,
                 block_size: int = 4096,
                 effective_capacity_bytes: Optional[int] = None,
                 write_once: bool = False) -> None:
        self.volume_id = volume_id
        self.store = make_store(max(1, capacity_bytes // block_size),
                                block_size)
        if effective_capacity_bytes is None:
            effective_capacity_bytes = capacity_bytes
        self.effective_capacity_blocks = max(
            1, effective_capacity_bytes // block_size)
        self.write_once = write_once
        #: Set by HighLight when the drive reports end-of-medium.
        self.marked_full = False
        self.load_count = 0
        #: Health state machine (see docs/FAULTS.md); QUARANTINED and
        #: RETIRED volumes raise MediaFailure on I/O.
        self.health = VolumeHealth.ONLINE

    def inject_failure(self, t: float = 0.0, reason: str = "media_failure"
                       ) -> None:
        """Fail this volume (fault-injection harness entry point).

        Subsequent I/O through a drive holding it raises
        :class:`~repro.errors.MediaFailure`.  ``t`` is the virtual time
        of the injection, stamped onto the emitted trace event.
        """
        self.health = VolumeHealth.QUARANTINED
        obs.counter("fault_injected_total",
                    "faults injected by the fault plan",
                    ("kind",)).labels(kind=reason).inc()
        obs.event(obs.EV_FAULT_INJECTED, t, kind=reason,
                  volume=self.volume_id)

    @property
    def block_size(self) -> int:
        return self.store.block_size

    @property
    def capacity_blocks(self) -> int:
        return self.store.capacity_blocks

    def __repr__(self) -> str:
        return (f"{type(self).__name__}(id={self.volume_id}, "
                f"{self.effective_capacity_blocks} usable blocks)")


class Drive(ABC):
    """A reader/writer unit inside a jukebox."""

    def __init__(self, name: str, bus: Optional[SCSIBus] = None) -> None:
        self.name = name
        self.bus = bus
        self.loaded: Optional[RemovableVolume] = None
        self.stats = DeviceStats(device=name)
        #: A pinned drive is never chosen for eviction by the robot
        #: (the paper dedicates one MO drive to the active writing platter).
        self.pinned = False

    def require_loaded(self) -> RemovableVolume:
        if self.loaded is None:
            raise VolumeNotLoaded(f"drive {self.name} is empty")
        if not self.loaded.health.serving:
            from repro.errors import MediaFailure
            raise MediaFailure(
                f"volume {self.loaded.volume_id} has failed "
                f"({self.loaded.health.value})",
                volume_id=self.loaded.volume_id)
        return self.loaded

    def _pre_write(self, volume: RemovableVolume, blkno: int,
                   nblocks: int) -> None:
        """Shared pre-write policy: end-of-medium, then WORM blank check."""
        if blkno + nblocks > volume.effective_capacity_blocks:
            raise EndOfMedium(
                f"volume {volume.volume_id}: write of {nblocks} blocks at "
                f"{blkno} passes effective capacity "
                f"{volume.effective_capacity_blocks}",
                volume_id=volume.volume_id, blkno=blkno)
        self._check_write(volume, blkno, nblocks)

    def _check_write(self, volume: RemovableVolume, blkno: int,
                     nblocks: int) -> None:
        if volume.write_once and \
                volume.store.written_in_range(blkno, nblocks):
            first = next(i for i in range(nblocks)
                         if volume.store.is_written(blkno + i))
            raise ReadOnlyMedium(
                f"volume {volume.volume_id} block {blkno + first} "
                "already written (WORM)",
                volume_id=volume.volume_id, blkno=blkno + first)

    @abstractmethod
    def read(self, actor: Actor, blkno: int, nblocks: int) -> bytes:
        """Timed read from the loaded volume."""

    @abstractmethod
    def write(self, actor: Actor, blkno: int, data: Buffer) -> None:
        """Timed write to the loaded volume."""

    def read_refs(self, actor: Actor, blkno: int,
                  nblocks: int) -> List[ExtentRef]:
        """Timed zero-copy read; subclasses override with store-native
        versions whose timing matches :meth:`read` exactly."""
        return [ref_of(self.read(actor, blkno, nblocks))]

    def write_refs(self, actor: Actor, blkno: int,
                   refs: List[ExtentRef]) -> None:
        """Timed zero-copy write (caller stops mutating the ranges)."""
        self.write(actor, blkno, materialize_refs(refs))

    def on_load(self, volume: RemovableVolume) -> None:
        """Hook: reset positioning state when media changes."""
        self.loaded = volume
        volume.load_count += 1

    def on_unload(self) -> None:
        self.loaded = None


class Jukebox:
    """A robot, a set of drives, and a shelf of volumes."""

    def __init__(self, name: str, drives: Sequence[Drive],
                 volumes: Sequence[RemovableVolume],
                 swap_time: float = 13.5,
                 bus: Optional[SCSIBus] = None,
                 hog_bus_on_swap: bool = True) -> None:
        if not drives:
            raise ValueError("a jukebox needs at least one drive")
        self.name = name
        self.drives: List[Drive] = list(drives)
        self.volumes: Dict[int, RemovableVolume] = {
            v.volume_id: v for v in volumes}
        if len(self.volumes) != len(volumes):
            raise ValueError("duplicate volume ids")
        self.swap_time = swap_time
        self.bus = bus
        self.hog_bus_on_swap = hog_bus_on_swap
        self.robot = TimelineResource(f"{name}.robot")
        self.swap_count = 0
        self._drive_lru: LRUTracker[int] = LRUTracker()
        #: Optional :class:`repro.faults.FaultInjector` consulted before
        #: each actual media swap (mount-failure injection).
        self.fault_injector = None

    # -- inventory ----------------------------------------------------------

    def volume(self, volume_id: int) -> RemovableVolume:
        vol = self.volumes.get(volume_id)
        if vol is None:
            raise NoSuchVolume(f"no volume {volume_id} in {self.name}",
                               volume_id=volume_id)
        return vol

    def drive_holding(self, volume_id: int) -> Optional[int]:
        """Index of the drive holding ``volume_id``, or None."""
        for idx, drive in enumerate(self.drives):
            if drive.loaded is not None and \
                    drive.loaded.volume_id == volume_id:
                return idx
        return None

    # -- robotics -----------------------------------------------------------

    def _choose_drive(self, prefer: Optional[int]) -> int:
        if prefer is not None:
            return prefer
        for idx, drive in enumerate(self.drives):
            if drive.loaded is None and not drive.pinned:
                return idx
        for idx in self._drive_lru:
            if not self.drives[idx].pinned:
                return idx
        for idx, drive in enumerate(self.drives):
            if not drive.pinned:
                return idx
        raise DriveBusy(f"every drive in {self.name} is pinned")

    def load(self, actor: Actor, volume_id: int,
             drive_index: Optional[int] = None) -> int:
        """Ensure ``volume_id`` is in a drive; returns the drive index.

        A no-op (free of charge) if the volume is already loaded.  Otherwise
        the robot swaps media, charging :attr:`swap_time` and hogging the
        bus if the driver is the non-disconnecting kind.
        """
        held = self.drive_holding(volume_id)
        if held is not None:
            self._drive_lru.touch(held)
            return held
        self.volume(volume_id)  # existence check
        if self.fault_injector is not None:
            self.fault_injector.on_mount(actor, volume_id)
        idx = self._choose_drive(drive_index)
        drive = self.drives[idx]
        self.robot.occupy(actor, 0.0)  # serialise on the picker
        if self.hog_bus_on_swap and self.bus is not None:
            self.bus.hog(actor, self.swap_time)
            self.robot.next_free = max(self.robot.next_free, actor.time)
        else:
            self.robot.occupy(actor, self.swap_time)
        unloaded = drive.loaded.volume_id if drive.loaded is not None else None
        if drive.loaded is not None:
            drive.on_unload()
        drive.on_load(self.volumes[volume_id])
        self.swap_count += 1
        self._drive_lru.touch(idx)
        obs.counter("robot_swaps_total", "media swaps by the robot picker",
                    ("jukebox",)).labels(jukebox=self.name).inc()
        obs.event(obs.EV_VOLUME_SWITCH, actor.time, jukebox=self.name,
                  drive=drive.name, volume=volume_id, unloaded=unloaded)
        return idx

    # -- volume-addressed I/O ------------------------------------------------

    def read(self, actor: Actor, volume_id: int, blkno: int,
             nblocks: int, drive_index: Optional[int] = None) -> bytes:
        """Load (if needed) and read from a volume."""
        idx = self.load(actor, volume_id, drive_index)
        data = self.drives[idx].read(actor, blkno, nblocks)
        self._drive_lru.touch(idx)
        return data

    def write(self, actor: Actor, volume_id: int, blkno: int,
              data: Buffer, drive_index: Optional[int] = None) -> None:
        """Load (if needed) and write to a volume."""
        idx = self.load(actor, volume_id, drive_index)
        self.drives[idx].write(actor, blkno, data)
        self._drive_lru.touch(idx)

    def read_refs(self, actor: Actor, volume_id: int, blkno: int,
                  nblocks: int,
                  drive_index: Optional[int] = None) -> List[ExtentRef]:
        """Load (if needed) and read borrowed ranges from a volume."""
        idx = self.load(actor, volume_id, drive_index)
        refs = self.drives[idx].read_refs(actor, blkno, nblocks)
        self._drive_lru.touch(idx)
        return refs

    def write_refs(self, actor: Actor, volume_id: int, blkno: int,
                   refs: List[ExtentRef],
                   drive_index: Optional[int] = None) -> None:
        """Load (if needed) and write borrowed ranges to a volume."""
        idx = self.load(actor, volume_id, drive_index)
        self.drives[idx].write_refs(actor, blkno, refs)
        self._drive_lru.touch(idx)
