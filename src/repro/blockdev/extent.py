"""ExtentStore: contiguous written ranges as shared-buffer extent runs.

The per-block :class:`~repro.blockdev.base.BlockStore` moves every
segment through a Python loop — one dict entry per 4 KB block plus a
``b"".join`` on each read.  The extent store keeps whole written runs as
immutable ``(start, nblocks, buf, off)`` rows over shared buffers, so
the common segment-sized transfers are O(runs) bookkeeping:

* a ``write`` of an immutable ``bytes`` image *adopts* it by reference —
  sharing an immutable buffer is semantically identical to copying it;
* ``write_refs`` adopts borrowed ranges (:class:`ExtentRef`) of any
  buffer under the data-path contract that the handing-over side stops
  mutating the range — this is how a staging buffer's payload reaches
  disk, tape, and back without a single host copy.  Contiguous refs
  over one buffer are **coalesced at adopt time**, so a segment that
  arrives as chunked refs settles into one row immediately;
* ``writev`` splices a whole part list in as one batch: one carve, one
  row splice — never a per-part insert loop;
* ``read_refs`` hands back borrowed ranges instead of joined bytes
  (a pure binary-search slice, no merging), and ``read`` returns the
  stored ``bytes`` object itself when one extent exactly covers the
  request.

Extent rows are **immutable tuples** and extent buffers are **never
mutated in place**: every write replaces the covered range, and
trims/splits build new rows that only adjust ``(start, off, nblocks)``.
That makes an adopted buffer a stable snapshot even when shared between
several stores (disk line, tape volume, and cache can all reference the
same staging buffer) — and it makes :meth:`snapshot` a plain O(runs)
list copy instead of a deep copy, which is what the crash matrix pays
at every crash point.

Sparse semantics match BlockStore exactly: unwritten blocks read back as
zeros, ``is_written``/``written_blocks`` count real writes only, and a
read that crosses an unwritten hole never records the hole as written.
Fragmented runs are re-coalesced opportunistically: a multi-extent read
that is *fully* covered stores the joined image back as a single extent,
so repeated segment reads settle into the zero-copy fast path.

All host-memory copies this store does perform are accounted through
:func:`repro.blockdev.datapath.count_copy`.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import List, Sequence

from repro.blockdev.base import DataStore
from repro.blockdev.datapath import (Buffer, ExtentRef, count_copy,
                                     materialize_refs, sanitizer, zeros)

__all__ = ["ExtentStore"]

# Extent rows are immutable 4-tuples (start_blk, nblocks, buf, byte_off):
# blocks [start, start + nblocks) hold buf[off : off + nblocks * bs].
_START, _NBLK, _BUF, _OFF = range(4)


class ExtentStore(DataStore):
    """Sparse data store keeping written ranges as extent runs."""

    def __init__(self, capacity_blocks: int, block_size: int) -> None:
        super().__init__(capacity_blocks, block_size)
        self._starts: List[int] = []    # sorted extent start blocks
        self._exts: List[tuple] = []    # parallel extent rows
        self._written = 0               # total blocks covered by extents

    # -- internal geometry --------------------------------------------------

    def run_count(self) -> int:
        """Number of extent rows currently held (fragmentation probe)."""
        return len(self._exts)

    def _span(self, blkno: int, end: int) -> tuple:
        """Index range [lo, hi) of extents overlapping [blkno, end).

        Both edges are binary searches: ``lo`` is the last extent
        starting at or before ``blkno`` (kept only if it reaches past
        it), ``hi`` the first extent starting at or past ``end``.
        """
        starts = self._starts
        lo = bisect_right(starts, blkno)
        if lo > 0:
            row = self._exts[lo - 1]
            if row[_START] + row[_NBLK] > blkno:
                lo -= 1
        hi = bisect_left(starts, end, lo)
        return lo, hi

    def _carve(self, blkno: int, end: int, release: bool = True) -> int:
        """Remove coverage of [blkno, end); returns the insertion index
        where a replacement extent starting at ``blkno`` belongs.

        Remainders of partially-overlapped extents are kept as trimmed
        rows — no buffer bytes move.

        ``release=False`` marks a carve that replaces the range with the
        *identical bytes* (coalesce-on-read): outstanding borrows stay
        valid, so the sanitizer must not poison them.
        """
        if release:
            san = sanitizer()
            if san is not None:
                san.on_release(self, blkno, end)
        lo, hi = self._span(blkno, end)
        if lo == hi:
            return lo
        bs = self.block_size
        repl = []
        removed = 0
        for j in range(lo, hi):
            s, n, buf, off = self._exts[j]
            e = s + n
            removed += min(e, end) - max(s, blkno)
            if s < blkno:
                repl.append((s, blkno - s, buf, off))
            if e > end:
                repl.append((end, e - end, buf, off + (end - s) * bs))
        self._exts[lo:hi] = repl
        self._starts[lo:hi] = [r[_START] for r in repl]
        self._written -= removed
        return lo + (1 if repl and repl[0][_START] < blkno else 0)

    def _splice(self, idx: int, rows: List[tuple]) -> None:
        """Insert a batch of contiguous, pre-merged rows at ``idx`` with
        one slice assignment, free-merging with the two edge neighbours
        that continue the same buffer contiguously.

        The caller has already carved [rows[0].start, rows[-1].end), so
        only the outer boundaries can merge.  ``_written`` is updated by
        the caller (edge merges never change coverage).
        """
        bs = self.block_size
        exts = self._exts
        lo = hi = idx
        if idx > 0:
            p = exts[idx - 1]
            r = rows[0]
            if (p[_START] + p[_NBLK] == r[_START] and p[_BUF] is r[_BUF]
                    and p[_OFF] + p[_NBLK] * bs == r[_OFF]):
                rows[0] = (p[_START], p[_NBLK] + r[_NBLK], p[_BUF], p[_OFF])
                lo = idx - 1
        if idx < len(exts):
            nxt = exts[idx]
            r = rows[-1]
            if (r[_START] + r[_NBLK] == nxt[_START] and r[_BUF] is nxt[_BUF]
                    and r[_OFF] + r[_NBLK] * bs == nxt[_OFF]):
                rows[-1] = (r[_START], r[_NBLK] + nxt[_NBLK], r[_BUF],
                            r[_OFF])
                hi = idx + 1
        exts[lo:hi] = rows
        self._starts[lo:hi] = [r[_START] for r in rows]

    def _place(self, blkno: int, nblocks: int, buf: Buffer,
               off: int, release: bool = True) -> None:
        idx = self._carve(blkno, blkno + nblocks, release=release)
        self._splice(idx, [(blkno, nblocks, buf, off)])
        self._written += nblocks

    # -- scalar API (BlockStore-compatible) ---------------------------------

    def read(self, blkno: int, nblocks: int) -> bytes:
        """Return ``nblocks`` blocks starting at ``blkno``."""
        self.check_range(blkno, nblocks)
        bs = self.block_size
        end = blkno + nblocks
        nbytes = nblocks * bs
        lo, hi = self._span(blkno, end)
        if hi - lo == 1:
            s, n, buf, off = self._exts[lo]
            if s <= blkno and s + n >= end:
                skip = off + (blkno - s) * bs
                if (skip == 0 and isinstance(buf, bytes)
                        and len(buf) == nbytes):
                    return buf  # exact image: zero-copy
                count_copy(nbytes)
                return bytes(memoryview(buf)[skip:skip + nbytes])
        # General path: join rows and zero-fill holes in one pass,
        # tracking coverage so the hole check needs no second scan.
        parts: List[Buffer] = []
        cursor = blkno
        covered = 0
        for j in range(lo, hi):
            s, n, buf, off = self._exts[j]
            if s > cursor:
                gap = (s - cursor) * bs
                parts.append(memoryview(zeros(gap))[:gap])
                cursor = s
            take = min(s + n, end) - cursor
            skip = off + (cursor - s) * bs
            if (skip == 0 and take == n and isinstance(buf, bytes)
                    and len(buf) == take * bs):
                parts.append(buf)
            else:
                parts.append(memoryview(buf)[skip:skip + take * bs])
            covered += take
            cursor += take
        if cursor < end:
            gap = (end - cursor) * bs
            parts.append(memoryview(zeros(gap))[:gap])
        count_copy(nbytes)
        data = b"".join(parts)
        # Coalesce-on-read: only a hole-free range may be stored back as
        # one extent — re-writing a hole would corrupt is_written().
        # The replacement holds the identical bytes, so outstanding
        # borrows stay valid: no sanitizer release.  When no overlapped
        # row hangs past the request (the usual whole-run read) this is
        # one direct slice assignment, no carve.
        if covered == nblocks:
            first = self._exts[lo]
            last = self._exts[hi - 1]
            if (first[_START] >= blkno
                    and last[_START] + last[_NBLK] <= end):
                self._exts[lo:hi] = [(blkno, nblocks, data, 0)]
                self._starts[lo:hi] = [blkno]
            else:
                self._place(blkno, nblocks, data, 0, release=False)
        return data

    def write(self, blkno: int, data: Buffer) -> None:
        """Write ``data`` (a whole number of blocks) starting at ``blkno``.

        Immutable ``bytes`` are adopted by reference; mutable buffers are
        snapshotted with one counted copy.
        """
        nbytes = len(data)
        self._check_aligned(nbytes)
        nblocks = nbytes // self.block_size
        self.check_range(blkno, nblocks)
        if isinstance(data, bytes):
            buf: Buffer = data
        else:
            count_copy(nbytes)
            buf = bytes(data)
        self._place(blkno, nblocks, buf, 0)

    def is_written(self, blkno: int) -> bool:
        """True if ``blkno`` has ever been written."""
        lo = bisect_right(self._starts, blkno)
        if lo == 0:
            return False
        row = self._exts[lo - 1]
        return row[_START] + row[_NBLK] > blkno

    def written_in_range(self, blkno: int, nblocks: int) -> int:
        """How many blocks of [blkno, blkno+nblocks) have been written."""
        end = blkno + nblocks
        lo, hi = self._span(blkno, end)
        return sum(min(self._exts[j][_START] + self._exts[j][_NBLK], end)
                   - max(self._exts[j][_START], blkno)
                   for j in range(lo, hi))

    def discard(self, blkno: int, nblocks: int = 1) -> None:
        """Forget blocks (used by tests and by WORM 'blank check')."""
        if nblocks <= 0:
            return
        self._carve(blkno, blkno + nblocks)

    def written_blocks(self) -> int:
        """Number of distinct blocks ever written (space accounting)."""
        return self._written

    # -- vectored / zero-copy API -------------------------------------------

    def read_refs(self, blkno: int, nblocks: int) -> List[ExtentRef]:
        """Borrowed ranges covering the request, zeros filling holes."""
        self.check_range(blkno, nblocks)
        bs = self.block_size
        end = blkno + nblocks
        lo, hi = self._span(blkno, end)
        refs: List[ExtentRef] = []
        cursor = blkno
        for j in range(lo, hi):
            s, n, buf, off = self._exts[j]
            if s > cursor:
                gap = (s - cursor) * bs
                refs.append(ExtentRef(zeros(gap), 0, gap))
                cursor = s
            take = min(s + n, end) - cursor
            refs.append(ExtentRef(buf, off + (cursor - s) * bs, take * bs))
            cursor += take
        if cursor < end:
            gap = (end - cursor) * bs
            refs.append(ExtentRef(zeros(gap), 0, gap))
        san = sanitizer()
        if san is not None:
            refs = san.on_borrow(self, blkno, refs)
        return refs

    def write_refs(self, blkno: int, refs: Sequence[ExtentRef]) -> None:
        """Adopt borrowed ranges as extents (zero-copy when block-aligned).

        The handing-over side must not mutate the referenced ranges after
        this call; the store keeps them by reference.  Contiguous refs
        over one buffer merge into a single row *here*, at adopt time, so
        the read side never pays a merge.
        """
        bs = self.block_size
        total = 0
        aligned = True
        for r in refs:
            total += r.nbytes
            if r.nbytes % bs:
                aligned = False
        self._check_aligned(total)
        nblocks = total // bs
        self.check_range(blkno, nblocks)
        san = sanitizer()
        if not aligned:
            # Unaligned pieces: fall back to one materialized image
            # (reading the refs' bytes, so adoption is notified after).
            self.write(blkno, materialize_refs(refs))
            if san is not None:
                san.on_adopt(self, refs)
            return
        idx = self._carve(blkno, blkno + nblocks)
        rows: List[tuple] = []
        cursor = blkno
        for r in refs:
            if not r.nbytes:
                continue
            n = r.nbytes // bs
            if rows:
                prev = rows[-1]
                if (prev[_BUF] is r.buf
                        and prev[_OFF] + prev[_NBLK] * bs == r.start):
                    # Adopt-time coalescing: the ref continues the same
                    # buffer contiguously.
                    rows[-1] = (prev[_START], prev[_NBLK] + n, prev[_BUF],
                                prev[_OFF])
                    cursor += n
                    continue
            rows.append((cursor, n, r.buf, r.start))
            cursor += n
        if rows:
            self._splice(idx, rows)
            self._written += nblocks
        if san is not None:
            san.on_adopt(self, refs)

    def readv(self, blkno: int, nblocks: int) -> List[memoryview]:
        """Zero-copy views covering the request (zeros for holes)."""
        return [r.view() for r in self.read_refs(blkno, nblocks)]

    def writev(self, blkno: int, parts: Sequence[Buffer]) -> None:
        """Write a sequence of buffers at consecutive block positions.

        The whole part list lands as one batch: one carve over the
        covered range, one row splice — the segment writer's 256-part
        vectored append is O(parts), not O(parts x rows).
        """
        bs = self.block_size
        rows: List[tuple] = []
        cursor = blkno
        for part in parts:
            nbytes = len(part)
            if not nbytes:
                continue
            self._check_aligned(nbytes)
            if isinstance(part, bytes):
                buf: Buffer = part
            else:
                count_copy(nbytes)
                buf = bytes(part)
            rows.append((cursor, nbytes // bs, buf, 0))
            cursor += nbytes // bs
        if not rows:
            return
        nblocks = cursor - blkno
        self.check_range(blkno, nblocks)
        idx = self._carve(blkno, blkno + nblocks)
        self._splice(idx, rows)
        self._written += nblocks

    # -- media imaging ------------------------------------------------------

    def snapshot(self) -> object:
        # Rows are immutable tuples and extent buffers are never mutated
        # in place, so a shallow list copy *is* a deep image: later
        # writes splice in new rows, never touch old ones.  O(runs)
        # pointer copies — the crash matrix snapshots per crash point.
        return list(self._exts)

    def restore(self, image: object) -> None:
        if not isinstance(image, list):
            from repro.errors import InvalidArgument
            raise InvalidArgument("not an ExtentStore image")
        san = sanitizer()
        if san is not None:
            # Wholesale content replacement: every outstanding borrow of
            # this store is now stale.
            san.on_release(self, 0, self.capacity_blocks,
                           reason="replaced by a media-image restore")
        self._exts = [(s, n, buf, off) for s, n, buf, off in image]
        self._starts = [row[_START] for row in self._exts]
        self._written = sum(row[_NBLK] for row in self._exts)
