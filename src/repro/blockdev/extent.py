"""ExtentStore: contiguous written ranges as shared-buffer extent runs.

The per-block :class:`~repro.blockdev.base.BlockStore` moves every
segment through a Python loop — one dict entry per 4 KB block plus a
``b"".join`` on each read.  The extent store keeps whole written runs as
``(start, nblocks, buf, off)`` rows over shared buffers, so the common
segment-sized transfers are O(1) bookkeeping:

* a ``write`` of an immutable ``bytes`` image *adopts* it by reference —
  sharing an immutable buffer is semantically identical to copying it;
* ``write_refs`` adopts borrowed ranges (:class:`ExtentRef`) of any
  buffer under the data-path contract that the handing-over side stops
  mutating the range — this is how a staging buffer's payload reaches
  disk, tape, and back without a single host copy;
* ``read_refs`` hands back borrowed ranges instead of joined bytes, and
  ``read`` returns the stored ``bytes`` object itself when one extent
  exactly covers the request.

Extent buffers are **never mutated in place**: every write replaces the
covered range, and trims/splits only adjust ``(start, off, nblocks)``.
That makes an adopted buffer a stable snapshot even when shared between
several stores (disk line, tape volume, and cache can all reference the
same staging buffer).

Sparse semantics match BlockStore exactly: unwritten blocks read back as
zeros, ``is_written``/``written_blocks`` count real writes only, and a
read that crosses an unwritten hole never records the hole as written.
Fragmented runs are re-coalesced opportunistically: a multi-extent read
that is *fully* covered stores the joined image back as a single extent,
so repeated segment reads settle into the zero-copy fast path.

All host-memory copies this store does perform are accounted through
:func:`repro.blockdev.datapath.count_copy`.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence

from repro.blockdev.base import DataStore
from repro.blockdev.datapath import (Buffer, ExtentRef, count_copy,
                                     materialize_refs, sanitizer, zeros)

__all__ = ["ExtentStore"]

# Extent rows are mutable 4-lists [start_blk, nblocks, buf, byte_off]:
# blocks [start, start + nblocks) hold buf[off : off + nblocks * bs].
_START, _NBLK, _BUF, _OFF = range(4)


class ExtentStore(DataStore):
    """Sparse data store keeping written ranges as extent runs."""

    def __init__(self, capacity_blocks: int, block_size: int) -> None:
        super().__init__(capacity_blocks, block_size)
        self._starts: List[int] = []   # sorted extent start blocks
        self._exts: List[list] = []    # parallel extent rows
        self._written = 0              # total blocks covered by extents

    # -- internal geometry --------------------------------------------------

    def _span(self, blkno: int, end: int) -> tuple:
        """Index range [lo, hi) of extents overlapping [blkno, end)."""
        lo = bisect_right(self._starts, blkno)
        if lo > 0:
            row = self._exts[lo - 1]
            if row[_START] + row[_NBLK] > blkno:
                lo -= 1
        hi = lo
        while hi < len(self._exts) and self._starts[hi] < end:
            hi += 1
        return lo, hi

    def _carve(self, blkno: int, end: int, release: bool = True) -> int:
        """Remove coverage of [blkno, end); returns the insertion index
        where a replacement extent starting at ``blkno`` belongs.

        Remainders of partially-overlapped extents are kept by trimming
        ``(start, off, nblocks)`` — no buffer bytes move.

        ``release=False`` marks a carve that replaces the range with the
        *identical bytes* (coalesce-on-read): outstanding borrows stay
        valid, so the sanitizer must not poison them.
        """
        if release:
            san = sanitizer()
            if san is not None:
                san.on_release(self, blkno, end)
        lo, hi = self._span(blkno, end)
        if lo == hi:
            return lo
        bs = self.block_size
        repl = []
        removed = 0
        for j in range(lo, hi):
            s, n, buf, off = self._exts[j]
            e = s + n
            removed += min(e, end) - max(s, blkno)
            if s < blkno:
                repl.append([s, blkno - s, buf, off])
            if e > end:
                repl.append([end, e - end, buf, off + (end - s) * bs])
        self._exts[lo:hi] = repl
        self._starts[lo:hi] = [r[_START] for r in repl]
        self._written -= removed
        return lo + (1 if repl and repl[0][_START] < blkno else 0)

    def _insert(self, idx: int, start: int, nblocks: int, buf: Buffer,
                off: int) -> None:
        """Insert an extent at ``idx``, free-merging with neighbours that
        continue the same buffer contiguously."""
        bs = self.block_size
        self._exts.insert(idx, [start, nblocks, buf, off])
        self._starts.insert(idx, start)
        self._written += nblocks
        nxt = idx + 1
        if nxt < len(self._exts):
            a, b = self._exts[idx], self._exts[nxt]
            if (a[_START] + a[_NBLK] == b[_START] and a[_BUF] is b[_BUF]
                    and a[_OFF] + a[_NBLK] * bs == b[_OFF]):
                a[_NBLK] += b[_NBLK]
                del self._exts[nxt]
                del self._starts[nxt]
        if idx > 0:
            p, a = self._exts[idx - 1], self._exts[idx]
            if (p[_START] + p[_NBLK] == a[_START] and p[_BUF] is a[_BUF]
                    and p[_OFF] + p[_NBLK] * bs == a[_OFF]):
                p[_NBLK] += a[_NBLK]
                del self._exts[idx]
                del self._starts[idx]

    def _place(self, blkno: int, nblocks: int, buf: Buffer,
               off: int, release: bool = True) -> None:
        idx = self._carve(blkno, blkno + nblocks, release=release)
        self._insert(idx, blkno, nblocks, buf, off)

    # -- scalar API (BlockStore-compatible) ---------------------------------

    def read(self, blkno: int, nblocks: int) -> bytes:
        """Return ``nblocks`` blocks starting at ``blkno``."""
        self.check_range(blkno, nblocks)
        bs = self.block_size
        end = blkno + nblocks
        nbytes = nblocks * bs
        lo, hi = self._span(blkno, end)
        if hi - lo == 1:
            s, n, buf, off = self._exts[lo]
            if s <= blkno and s + n >= end:
                skip = off + (blkno - s) * bs
                if (isinstance(buf, bytes) and skip == 0
                        and len(buf) == nbytes):
                    return buf  # exact image: zero-copy
                count_copy(nbytes)
                return bytes(memoryview(buf)[skip:skip + nbytes])
        refs = self.read_refs(blkno, nblocks)
        count_copy(nbytes)
        data = b"".join(r.view() for r in refs)
        # Coalesce-on-read: only a hole-free range may be stored back as
        # one extent — re-writing a hole would corrupt is_written().
        # The replacement holds the identical bytes, so outstanding
        # borrows stay valid: release=False keeps the sanitizer quiet.
        if self.written_in_range(blkno, nblocks) == nblocks:
            self._place(blkno, nblocks, data, 0, release=False)
        return data

    def write(self, blkno: int, data: Buffer) -> None:
        """Write ``data`` (a whole number of blocks) starting at ``blkno``.

        Immutable ``bytes`` are adopted by reference; mutable buffers are
        snapshotted with one counted copy.
        """
        nbytes = len(data)
        self._check_aligned(nbytes)
        nblocks = nbytes // self.block_size
        self.check_range(blkno, nblocks)
        if isinstance(data, bytes):
            buf: Buffer = data
        else:
            count_copy(nbytes)
            buf = bytes(data)
        self._place(blkno, nblocks, buf, 0)

    def is_written(self, blkno: int) -> bool:
        """True if ``blkno`` has ever been written."""
        lo = bisect_right(self._starts, blkno)
        if lo == 0:
            return False
        row = self._exts[lo - 1]
        return row[_START] + row[_NBLK] > blkno

    def written_in_range(self, blkno: int, nblocks: int) -> int:
        """How many blocks of [blkno, blkno+nblocks) have been written."""
        end = blkno + nblocks
        lo, hi = self._span(blkno, end)
        return sum(min(self._exts[j][_START] + self._exts[j][_NBLK], end)
                   - max(self._exts[j][_START], blkno)
                   for j in range(lo, hi))

    def discard(self, blkno: int, nblocks: int = 1) -> None:
        """Forget blocks (used by tests and by WORM 'blank check')."""
        if nblocks <= 0:
            return
        self._carve(blkno, blkno + nblocks)

    def written_blocks(self) -> int:
        """Number of distinct blocks ever written (space accounting)."""
        return self._written

    # -- vectored / zero-copy API -------------------------------------------

    def read_refs(self, blkno: int, nblocks: int) -> List[ExtentRef]:
        """Borrowed ranges covering the request, zeros filling holes."""
        self.check_range(blkno, nblocks)
        bs = self.block_size
        end = blkno + nblocks
        lo, hi = self._span(blkno, end)
        refs: List[ExtentRef] = []
        cursor = blkno
        for j in range(lo, hi):
            s, n, buf, off = self._exts[j]
            if s > cursor:
                refs.append(ExtentRef(zeros((s - cursor) * bs), 0,
                                      (s - cursor) * bs))
                cursor = s
            take = min(s + n, end) - cursor
            refs.append(ExtentRef(buf, off + (cursor - s) * bs, take * bs))
            cursor += take
        if cursor < end:
            gap = (end - cursor) * bs
            refs.append(ExtentRef(zeros(gap), 0, gap))
        san = sanitizer()
        if san is not None:
            refs = san.on_borrow(self, blkno, refs)
        return refs

    def write_refs(self, blkno: int, refs: Sequence[ExtentRef]) -> None:
        """Adopt borrowed ranges as extents (zero-copy when block-aligned).

        The handing-over side must not mutate the referenced ranges after
        this call; the store keeps them by reference.
        """
        bs = self.block_size
        total = sum(r.nbytes for r in refs)
        self._check_aligned(total)
        self.check_range(blkno, total // bs)
        san = sanitizer()
        if any(r.nbytes % bs for r in refs):
            # Unaligned pieces: fall back to one materialized image
            # (reading the refs' bytes, so adoption is notified after).
            self.write(blkno, materialize_refs(refs))
            if san is not None:
                san.on_adopt(self, refs)
            return
        idx = self._carve(blkno, blkno + total // bs)
        cursor = blkno
        for r in refs:
            if not r.nbytes:
                continue
            n = r.nbytes // bs
            self._insert(idx, cursor, n, r.buf, r.start)
            idx = self._span(cursor, cursor + n)[1]
            cursor += n
        if san is not None:
            san.on_adopt(self, refs)

    def readv(self, blkno: int, nblocks: int) -> List[memoryview]:
        """Zero-copy views covering the request (zeros for holes)."""
        return [r.view() for r in self.read_refs(blkno, nblocks)]

    # -- media imaging ------------------------------------------------------

    def snapshot(self) -> object:
        # Extent buffers are never mutated in place (writes replace rows),
        # so sharing them with the image is safe; only the row lists are
        # copied.  Rows are frozen as tuples to keep the image immutable.
        return [(s, n, buf, off) for s, n, buf, off in self._exts]

    def restore(self, image: object) -> None:
        if not isinstance(image, list):
            from repro.errors import InvalidArgument
            raise InvalidArgument("not an ExtentStore image")
        san = sanitizer()
        if san is not None:
            # Wholesale content replacement: every outstanding borrow of
            # this store is now stale.
            san.on_release(self, 0, self.capacity_blocks,
                           reason="replaced by a media-image restore")
        self._exts = [[s, n, buf, off] for s, n, buf, off in image]
        self._starts = [row[_START] for row in self._exts]
        self._written = sum(row[_NBLK] for row in self._exts)

    def writev(self, blkno: int, parts: Sequence[Buffer]) -> None:
        """Write a sequence of buffers at consecutive block positions."""
        cursor = blkno
        for part in parts:
            if not len(part):
                continue
            self.write(cursor, part)
            cursor += len(part) // self.block_size
