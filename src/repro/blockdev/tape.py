"""Linear tape media and drives (the Metrum unit's innards).

Tape positioning is linear: the cost of reaching a block is proportional
to the distance the tape must wind, and writing is append-biased.  A
cartridge's *effective* capacity can fall short of nominal when
device-level compression underperforms (paper §6.3); HighLight reacts to
the resulting ``EndOfMedium`` by marking the volume full and re-writing the
interrupted segment on the next volume.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.blockdev.bus import SCSIBus
from repro.blockdev.datapath import Buffer, ExtentRef, refs_nbytes
from repro.blockdev.jukebox import Drive, RemovableVolume
from repro.sim.actor import Actor
from repro.sim.resources import TimelineResource, occupy_all


class TapeVolume(RemovableVolume):
    """One tape cartridge (e.g. a 14.5 GB Metrum cartridge)."""


class TapeDrive(Drive):
    """A streaming tape transport.

    Timing model: load/thread time on media change, wind at
    ``wind_rate`` bytes of tape distance per second to reach a target
    block, then stream at ``read_rate`` / ``write_rate``.
    """

    def __init__(self, name: str, bus: Optional[SCSIBus] = None,
                 read_rate: float = 1024.0 * 1024,
                 write_rate: float = 1024.0 * 1024,
                 wind_rate: float = 80.0 * 1024 * 1024,
                 thread_time: float = 20.0,
                 per_op_overhead: float = 0.005,
                 block_size: int = 4096) -> None:
        super().__init__(name, bus)
        self.read_rate = read_rate
        self.write_rate = write_rate
        self.wind_rate = wind_rate
        self.thread_time = thread_time
        self.per_op_overhead = per_op_overhead
        self.block_size = block_size
        self.transport = TimelineResource(f"{name}.transport")
        self.position_blk = 0  # head position on the loaded tape

    def on_load(self, volume: RemovableVolume) -> None:
        super().on_load(volume)
        self.position_blk = 0

    def _wind_to(self, actor: Actor, blkno: int) -> float:
        """Wind the tape from the current position to ``blkno``."""
        distance_bytes = abs(blkno - self.position_blk) * self.block_size
        seconds = distance_bytes / self.wind_rate
        if seconds:
            self.transport.occupy(actor, seconds)
        return seconds

    def _stream(self, actor: Actor, nbytes: int, is_write: bool) -> float:
        rate = self.write_rate if is_write else self.read_rate
        xfer = nbytes / rate
        if self.bus is not None:
            wire = nbytes / self.bus.bandwidth
            occupy_all(actor, [self.transport, self.bus], max(xfer, wire))
        else:
            self.transport.occupy(actor, xfer)
        return xfer

    def read(self, actor: Actor, blkno: int, nblocks: int) -> bytes:
        volume = self.require_loaded()
        data = volume.store.read(blkno, nblocks)
        self.transport.occupy(actor, self.per_op_overhead)
        wind = self._wind_to(actor, blkno)
        xfer = self._stream(actor, nblocks * volume.block_size,
                            is_write=False)
        self.position_blk = blkno + nblocks
        self.stats.record("read", len(data), wind, xfer)
        return data

    def write(self, actor: Actor, blkno: int, data: Buffer) -> None:
        volume = self.require_loaded()
        nblocks = len(data) // volume.block_size
        self._pre_write(volume, blkno, nblocks)
        volume.store.write(blkno, data)
        self._timed_write(actor, blkno, len(data))

    def _timed_write(self, actor: Actor, blkno: int, nbytes: int) -> None:
        self.transport.occupy(actor, self.per_op_overhead)
        wind = self._wind_to(actor, blkno)
        xfer = self._stream(actor, nbytes, is_write=True)
        self.position_blk = blkno + nbytes // self.block_size
        self.stats.record("write", nbytes, wind, xfer)

    # -- zero-copy variants (timing identical to read/write) ----------------

    def read_refs(self, actor: Actor, blkno: int,
                  nblocks: int) -> List[ExtentRef]:
        volume = self.require_loaded()
        refs = volume.store.read_refs(blkno, nblocks)
        self.transport.occupy(actor, self.per_op_overhead)
        wind = self._wind_to(actor, blkno)
        xfer = self._stream(actor, nblocks * volume.block_size,
                            is_write=False)
        self.position_blk = blkno + nblocks
        self.stats.record("read", nblocks * volume.block_size, wind, xfer)
        return refs

    def write_refs(self, actor: Actor, blkno: int,
                   refs: Sequence[ExtentRef]) -> None:
        volume = self.require_loaded()
        nbytes = refs_nbytes(refs)
        nblocks = nbytes // volume.block_size
        self._pre_write(volume, blkno, nblocks)
        volume.store.write_refs(blkno, refs)
        self._timed_write(actor, blkno, nbytes)
