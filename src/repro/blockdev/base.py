"""Device fundamentals: data stores, statistics, the device ABC, CPU model."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict

from repro import obs
from repro.errors import AddressError, InvalidArgument
from repro.sim.actor import Actor


class BlockStore:
    """Sparse data store: block number -> block bytes.

    Devices are data-bearing — file contents written through the stack must
    round-trip byte-for-byte through migration and demand fetch — but a
    848 MB partition is stored sparsely; unwritten blocks read back as
    zeros, like a freshly formatted medium.
    """

    def __init__(self, capacity_blocks: int, block_size: int) -> None:
        if capacity_blocks <= 0 or block_size <= 0:
            raise ValueError("capacity and block size must be positive")
        self.capacity_blocks = capacity_blocks
        self.block_size = block_size
        self._blocks: Dict[int, bytes] = {}
        self._zero = bytes(block_size)

    def check_range(self, blkno: int, nblocks: int) -> None:
        """Raise AddressError unless [blkno, blkno+nblocks) is on the store."""
        if nblocks <= 0:
            raise InvalidArgument(f"nblocks must be positive, got {nblocks}")
        if blkno < 0 or blkno + nblocks > self.capacity_blocks:
            raise AddressError(
                f"blocks [{blkno}, {blkno + nblocks}) outside device of "
                f"{self.capacity_blocks} blocks")

    def read(self, blkno: int, nblocks: int) -> bytes:
        """Return ``nblocks`` blocks starting at ``blkno``."""
        self.check_range(blkno, nblocks)
        parts = [self._blocks.get(blkno + i, self._zero)
                 for i in range(nblocks)]
        return b"".join(parts)

    def write(self, blkno: int, data: bytes) -> None:
        """Write ``data`` (a whole number of blocks) starting at ``blkno``."""
        if len(data) % self.block_size != 0:
            raise InvalidArgument(
                f"write of {len(data)} bytes is not block-aligned "
                f"(block size {self.block_size})")
        nblocks = len(data) // self.block_size
        self.check_range(blkno, nblocks)
        bs = self.block_size
        for i in range(nblocks):
            self._blocks[blkno + i] = bytes(data[i * bs:(i + 1) * bs])

    def is_written(self, blkno: int) -> bool:
        """True if ``blkno`` has ever been written."""
        return blkno in self._blocks

    def discard(self, blkno: int, nblocks: int = 1) -> None:
        """Forget blocks (used by tests and by WORM 'blank check')."""
        for i in range(nblocks):
            self._blocks.pop(blkno + i, None)

    def written_blocks(self) -> int:
        """Number of distinct blocks ever written (space accounting)."""
        return len(self._blocks)


class DeviceStats:
    """I/O accounting a device keeps about itself.

    Per-op totals live on the instance (cheap, always available); when
    the stats object carries a device name, every :meth:`record` also
    publishes to the process-wide registry — per-device byte/op counters
    and a latency histogram — so one snapshot covers the whole farm.
    """

    def __init__(self, device: str = "") -> None:
        self.device = device
        self.read_ops = 0
        self.write_ops = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.seek_seconds = 0.0
        self.transfer_seconds = 0.0

    def record(self, op: str, nbytes: int, seek_seconds: float = 0.0,
               transfer_seconds: float = 0.0) -> None:
        """Account one completed I/O (``op`` is ``"read"`` or ``"write"``)."""
        if op == "read":
            self.read_ops += 1
            self.bytes_read += nbytes
        else:
            self.write_ops += 1
            self.bytes_written += nbytes
        self.seek_seconds += seek_seconds
        self.transfer_seconds += transfer_seconds
        if self.device:
            obs.counter("device_io_ops_total",
                        "I/O operations completed per device",
                        ("device", "op")).labels(
                            device=self.device, op=op).inc()
            obs.counter("device_io_bytes_total",
                        "bytes transferred per device",
                        ("device", "op")).labels(
                            device=self.device, op=op).inc(nbytes)
            obs.histogram("device_io_seconds",
                          "virtual seconds per I/O (positioning + transfer)",
                          ("device", "op")).labels(
                              device=self.device, op=op).observe(
                              seek_seconds + transfer_seconds)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy, for reports."""
        return {
            "read_ops": self.read_ops,
            "write_ops": self.write_ops,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "seek_seconds": self.seek_seconds,
            "transfer_seconds": self.transfer_seconds,
        }

    def reset(self) -> None:
        self.__init__(self.device)


class BlockDevice(ABC):
    """Abstract data-bearing, time-charging block device."""

    def __init__(self, name: str, capacity_blocks: int, block_size: int) -> None:
        self.name = name
        self.store = BlockStore(capacity_blocks, block_size)
        self.stats = DeviceStats(device=name)

    @property
    def block_size(self) -> int:
        return self.store.block_size

    @property
    def capacity_blocks(self) -> int:
        return self.store.capacity_blocks

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_blocks * self.block_size

    @abstractmethod
    def read(self, actor: Actor, blkno: int, nblocks: int) -> bytes:
        """Read blocks, charging virtual time to ``actor``."""

    @abstractmethod
    def write(self, actor: Actor, blkno: int, data: bytes) -> None:
        """Write blocks, charging virtual time to ``actor``."""

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.name!r}, "
                f"{self.capacity_blocks} x {self.block_size}B)")


class CPUModel:
    """The host CPU as a timing source for copies and per-block FS work.

    The paper attributes LFS's sequential-write deficit to "extra buffer
    copies performed inside the LFS code" on the HP 9000/370 (a 25 MHz
    68030), and FS code paths cost real time per block on that machine.
    ``copy_rate`` is the effective kernel memory-copy bandwidth;
    ``per_block_op`` is the FS/buffer-cache code path cost per 4 KB block.

    The CPU is deliberately *not* a shared TimelineResource: the paper's
    effects of interest are I/O contention, and modelling CPU contention
    would add noise without any figure to validate it against.
    """

    def __init__(self, copy_rate: float = 1.8 * 1024 * 1024,
                 per_block_op: float = 0.0008) -> None:
        self.copy_rate = copy_rate
        self.per_block_op = per_block_op

    def copy(self, actor: Actor, nbytes: int) -> float:
        """Charge a memory-to-memory copy of ``nbytes``; returns seconds."""
        seconds = nbytes / self.copy_rate
        actor.sleep(seconds)
        return seconds

    def block_ops(self, actor: Actor, nblocks: int) -> float:
        """Charge FS code-path time for touching ``nblocks`` blocks."""
        seconds = nblocks * self.per_block_op
        actor.sleep(seconds)
        return seconds


class FreeCPU(CPUModel):
    """A zero-cost CPU, for tests that only care about data movement."""

    def __init__(self) -> None:
        super().__init__(copy_rate=float("inf"), per_block_op=0.0)

    def copy(self, actor: Actor, nbytes: int) -> float:
        return 0.0

    def block_ops(self, actor: Actor, nblocks: int) -> float:
        return 0.0
