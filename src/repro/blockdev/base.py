"""Device fundamentals: data stores, statistics, the device ABC, CPU model."""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Dict, List, Sequence

from repro import obs
from repro.blockdev import datapath
from repro.blockdev.datapath import (Buffer, ExtentRef, count_copy,
                                     materialize_refs, ref_of)
from repro.errors import AddressError, InvalidArgument
from repro.sim.actor import Actor


class DataStore:
    """Common shape of the sparse data stores behind every device.

    Devices are data-bearing — file contents written through the stack must
    round-trip byte-for-byte through migration and demand fetch — but a
    848 MB partition is stored sparsely; unwritten blocks read back as
    zeros, like a freshly formatted medium.  Two implementations exist:
    the historical per-block :class:`BlockStore` (the ``"blockdict"``
    baseline) and the extent-run :class:`~repro.blockdev.extent
    .ExtentStore` (the default); :func:`make_store` picks by the active
    data-path mode.
    """

    def __init__(self, capacity_blocks: int, block_size: int) -> None:
        if capacity_blocks <= 0 or block_size <= 0:
            raise ValueError("capacity and block size must be positive")
        self.capacity_blocks = capacity_blocks
        self.block_size = block_size

    def check_range(self, blkno: int, nblocks: int) -> None:
        """Raise AddressError unless [blkno, blkno+nblocks) is on the store."""
        if nblocks <= 0:
            raise InvalidArgument(f"nblocks must be positive, got {nblocks}")
        if blkno < 0 or blkno + nblocks > self.capacity_blocks:
            raise AddressError(
                f"blocks [{blkno}, {blkno + nblocks}) outside device of "
                f"{self.capacity_blocks} blocks", blkno=blkno)

    def _check_aligned(self, nbytes: int) -> None:
        if nbytes % self.block_size != 0:
            raise InvalidArgument(
                f"write of {nbytes} bytes is not block-aligned "
                f"(block size {self.block_size})")

    # -- media imaging (crash simulation) ----------------------------------
    #
    # A "crash" in the simulator abandons every in-memory object; the only
    # state that survives is what reached the stores.  ``snapshot`` freezes
    # the written contents as an opaque image, ``restore`` loads such an
    # image into a (typically fresh) store of the same geometry — together
    # they model pulling the platters out of a dead machine and spinning
    # them up in a new one.

    def snapshot(self) -> object:
        """Freeze the written contents as an opaque, immutable image."""
        raise NotImplementedError

    def restore(self, image: object) -> None:
        """Replace this store's contents with a snapshotted image."""
        raise NotImplementedError


class BlockStore(DataStore):
    """Sparse per-block data store: block number -> block bytes.

    This is the ``"blockdict"`` baseline of the data-path A/B: simple,
    but every multi-block transfer costs a join on read and a per-block
    slice on write.  Those host copies are accounted through
    :func:`~repro.blockdev.datapath.count_copy` so the perf harness can
    compare modes honestly.
    """

    def __init__(self, capacity_blocks: int, block_size: int) -> None:
        super().__init__(capacity_blocks, block_size)
        self._blocks: Dict[int, bytes] = {}
        self._zero = bytes(block_size)

    def read(self, blkno: int, nblocks: int) -> bytes:
        """Return ``nblocks`` blocks starting at ``blkno``."""
        self.check_range(blkno, nblocks)
        if nblocks == 1:
            return self._blocks.get(blkno, self._zero)
        count_copy(nblocks * self.block_size)
        parts = [self._blocks.get(blkno + i, self._zero)
                 for i in range(nblocks)]
        return b"".join(parts)

    def write(self, blkno: int, data: Buffer) -> None:
        """Write ``data`` (a whole number of blocks) starting at ``blkno``.

        Accepts ``bytes | bytearray | memoryview``; a single-block
        immutable ``bytes`` write is stored by reference with no copy.
        """
        nbytes = len(data)
        self._check_aligned(nbytes)
        nblocks = nbytes // self.block_size
        self.check_range(blkno, nblocks)
        if nblocks == 1 and isinstance(data, bytes):
            self._blocks[blkno] = data
            return
        bs = self.block_size
        count_copy(nbytes)
        if isinstance(data, bytes):
            for i in range(nblocks):
                self._blocks[blkno + i] = data[i * bs:(i + 1) * bs]
        else:
            view = memoryview(data)
            for i in range(nblocks):
                self._blocks[blkno + i] = bytes(view[i * bs:(i + 1) * bs])

    def is_written(self, blkno: int) -> bool:
        """True if ``blkno`` has ever been written."""
        return blkno in self._blocks

    def written_in_range(self, blkno: int, nblocks: int) -> int:
        """How many blocks of [blkno, blkno+nblocks) have been written."""
        return sum(1 for i in range(nblocks) if blkno + i in self._blocks)

    def discard(self, blkno: int, nblocks: int = 1) -> None:
        """Forget blocks (used by tests and by WORM 'blank check')."""
        for i in range(nblocks):
            self._blocks.pop(blkno + i, None)

    def written_blocks(self) -> int:
        """Number of distinct blocks ever written (space accounting)."""
        return len(self._blocks)

    # -- vectored API (baseline: emulated over scalar read/write) ----------

    def read_refs(self, blkno: int, nblocks: int) -> List[ExtentRef]:
        """One ref over a joined copy (the baseline has no shared runs)."""
        return [ref_of(self.read(blkno, nblocks))]

    def write_refs(self, blkno: int, refs: Sequence[ExtentRef]) -> None:
        self.write(blkno, materialize_refs(refs))

    def readv(self, blkno: int, nblocks: int) -> List[memoryview]:
        return [memoryview(self.read(blkno, nblocks))]

    def writev(self, blkno: int, parts: Sequence[Buffer]) -> None:
        cursor = blkno
        for part in parts:
            if not len(part):
                continue
            self.write(cursor, part)
            cursor += len(part) // self.block_size

    # -- media imaging ------------------------------------------------------

    def snapshot(self) -> object:
        # Block payloads are immutable bytes, so a dict copy is a deep
        # image: later writes rebind entries, never mutate them.
        return dict(self._blocks)

    def restore(self, image: object) -> None:
        if not isinstance(image, dict):
            raise InvalidArgument("not a BlockStore image")
        self._blocks = dict(image)


def make_store(capacity_blocks: int, block_size: int) -> DataStore:
    """Build a data store per the active data-path mode."""
    if datapath.store_mode() == datapath.MODE_BLOCKDICT:
        return BlockStore(capacity_blocks, block_size)
    from repro.blockdev.extent import ExtentStore
    return ExtentStore(capacity_blocks, block_size)


class DeviceStats:
    """I/O accounting a device keeps about itself.

    Per-op totals live on the instance (cheap, always available); when
    the stats object carries a device name, every :meth:`record` also
    publishes to the process-wide registry — per-device byte/op counters
    and a latency histogram — so one snapshot covers the whole farm.
    """

    def __init__(self, device: str = "") -> None:
        self.device = device
        self.read_ops = 0
        self.write_ops = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self.seek_seconds = 0.0
        self.transfer_seconds = 0.0

    def record(self, op: str, nbytes: int, seek_seconds: float = 0.0,
               transfer_seconds: float = 0.0) -> None:
        """Account one completed I/O (``op`` is ``"read"`` or ``"write"``)."""
        if op == "read":
            self.read_ops += 1
            self.bytes_read += nbytes
        else:
            self.write_ops += 1
            self.bytes_written += nbytes
        self.seek_seconds += seek_seconds
        self.transfer_seconds += transfer_seconds
        if self.device:
            obs.counter("device_io_ops_total",
                        "I/O operations completed per device",
                        ("device", "op")).labels(
                            device=self.device, op=op).inc()
            obs.counter("device_io_bytes_total",
                        "bytes transferred per device",
                        ("device", "op")).labels(
                            device=self.device, op=op).inc(nbytes)
            obs.histogram("device_io_seconds",
                          "virtual seconds per I/O (positioning + transfer)",
                          ("device", "op")).labels(
                              device=self.device, op=op).observe(
                              seek_seconds + transfer_seconds)

    def snapshot(self) -> Dict[str, float]:
        """A plain-dict copy, for reports."""
        return {
            "read_ops": self.read_ops,
            "write_ops": self.write_ops,
            "bytes_read": self.bytes_read,
            "bytes_written": self.bytes_written,
            "seek_seconds": self.seek_seconds,
            "transfer_seconds": self.transfer_seconds,
        }

    def reset(self) -> None:
        self.__init__(self.device)


class BlockDevice(ABC):
    """Abstract data-bearing, time-charging block device."""

    def __init__(self, name: str, capacity_blocks: int, block_size: int) -> None:
        self.name = name
        self.store = make_store(capacity_blocks, block_size)
        self.stats = DeviceStats(device=name)

    @property
    def block_size(self) -> int:
        return self.store.block_size

    @property
    def capacity_blocks(self) -> int:
        return self.store.capacity_blocks

    @property
    def capacity_bytes(self) -> int:
        return self.capacity_blocks * self.block_size

    @abstractmethod
    def read(self, actor: Actor, blkno: int, nblocks: int) -> bytes:
        """Read blocks, charging virtual time to ``actor``."""

    @abstractmethod
    def write(self, actor: Actor, blkno: int, data: Buffer) -> None:
        """Write blocks, charging virtual time to ``actor``."""

    # -- vectored / zero-copy ops ------------------------------------------
    #
    # Defaults wrap the scalar ops so any device subclass keeps working;
    # concrete devices override with store-native versions whose timing
    # charges are identical to read/write of the same size.

    def read_refs(self, actor: Actor, blkno: int,
                  nblocks: int) -> List[ExtentRef]:
        """Read blocks as borrowed ranges (same timing as :meth:`read`)."""
        return [ref_of(self.read(actor, blkno, nblocks))]

    def write_refs(self, actor: Actor, blkno: int,
                   refs: Sequence[ExtentRef]) -> None:
        """Write borrowed ranges (same timing as :meth:`write`); the
        caller must not mutate the ranges afterwards."""
        self.write(actor, blkno, materialize_refs(refs))

    def writev(self, actor: Actor, blkno: int,
               parts: Sequence[Buffer]) -> None:
        """Gather-write a list of buffers as one device op."""
        self.write_refs(actor, blkno,
                        [ref_of(p) for p in parts if len(p)])

    def read_segment_image(self, actor: Actor, blkno: int,
                           nblocks: int) -> bytes:
        """One-shot contiguous image read (a whole segment, typically)."""
        return materialize_refs(self.read_refs(actor, blkno, nblocks))

    def write_segment_image(self, actor: Actor, blkno: int,
                            image: Buffer) -> None:
        """One-shot contiguous image write (a whole segment, typically)."""
        self.write(actor, blkno, image)

    def __repr__(self) -> str:
        return (f"{type(self).__name__}({self.name!r}, "
                f"{self.capacity_blocks} x {self.block_size}B)")


class CPUModel:
    """The host CPU as a timing source for copies and per-block FS work.

    The paper attributes LFS's sequential-write deficit to "extra buffer
    copies performed inside the LFS code" on the HP 9000/370 (a 25 MHz
    68030), and FS code paths cost real time per block on that machine.
    ``copy_rate`` is the effective kernel memory-copy bandwidth;
    ``per_block_op`` is the FS/buffer-cache code path cost per 4 KB block.

    The CPU is deliberately *not* a shared TimelineResource: the paper's
    effects of interest are I/O contention, and modelling CPU contention
    would add noise without any figure to validate it against.
    """

    def __init__(self, copy_rate: float = 1.8 * 1024 * 1024,
                 per_block_op: float = 0.0008) -> None:
        self.copy_rate = copy_rate
        self.per_block_op = per_block_op

    def copy(self, actor: Actor, nbytes: int) -> float:
        """Charge a memory-to-memory copy of ``nbytes``; returns seconds."""
        seconds = nbytes / self.copy_rate
        actor.sleep(seconds)
        return seconds

    def block_ops(self, actor: Actor, nblocks: int) -> float:
        """Charge FS code-path time for touching ``nblocks`` blocks."""
        seconds = nblocks * self.per_block_op
        actor.sleep(seconds)
        return seconds


class FreeCPU(CPUModel):
    """A zero-cost CPU, for tests that only care about data movement."""

    def __init__(self) -> None:
        super().__init__(copy_rate=float("inf"), per_block_op=0.0)

    def copy(self, actor: Actor, nbytes: int) -> float:
        return 0.0

    def block_ops(self, actor: Actor, nblocks: int) -> float:
        return 0.0
