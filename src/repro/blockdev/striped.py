"""Concatenating pseudo-driver: the 'disk farm' as one block address space.

HighLight's disks "are concatenated by a device driver and used as a
single LFS file system" (paper §6.4); it also names a striping driver in
its pseudo-device inventory (§6.6).  :class:`ConcatDevice` implements
concatenation — segment N lives wholly on one spindle — which is what the
segment-granular layout actually wants, and is the variant the prototype
ran.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.blockdev.base import BlockDevice
from repro.blockdev.datapath import (Buffer, ExtentRef, count_copy, ref_of,
                                     refs_nbytes, split_refs)
from repro.errors import AddressError, InvalidArgument
from repro.sim.actor import Actor


class ConcatDevice(BlockDevice):
    """Several block devices glued end-to-end into one address space."""

    def __init__(self, name: str, components: Sequence[BlockDevice]) -> None:
        if not components:
            raise ValueError("ConcatDevice needs at least one component")
        block_size = components[0].block_size
        for dev in components:
            if dev.block_size != block_size:
                raise InvalidArgument(
                    "all components must share one block size")
        total = sum(dev.capacity_blocks for dev in components)
        super().__init__(name, total, block_size)
        self.components: List[BlockDevice] = list(components)
        self._bases: List[int] = []
        base = 0
        for dev in components:
            self._bases.append(base)
            base += dev.capacity_blocks

    def locate(self, blkno: int) -> Tuple[int, int]:
        """Map a global block number to (component index, local block)."""
        if blkno < 0 or blkno >= self.capacity_blocks:
            raise AddressError(
                f"block {blkno} outside concat device of "
                f"{self.capacity_blocks} blocks", blkno=blkno)
        for idx in range(len(self.components) - 1, -1, -1):
            if blkno >= self._bases[idx]:
                return idx, blkno - self._bases[idx]
        raise AssertionError("unreachable")

    def _split(self, blkno: int, nblocks: int):
        """Yield (component, local block, count) runs covering the range."""
        remaining = nblocks
        cursor = blkno
        while remaining > 0:
            idx, local = self.locate(cursor)
            dev = self.components[idx]
            run = min(remaining, dev.capacity_blocks - local)
            yield dev, local, run
            cursor += run
            remaining -= run

    def read(self, actor: Actor, blkno: int, nblocks: int) -> bytes:
        self.store.check_range(blkno, nblocks)
        parts = [dev.read(actor, local, run)
                 for dev, local, run in self._split(blkno, nblocks)]
        if len(parts) == 1:
            data = parts[0]  # segment-granular layout: the common case
        else:
            count_copy(nblocks * self.block_size)
            data = b"".join(parts)
        self.stats.record("read", len(data))
        return data

    def write(self, actor: Actor, blkno: int, data: Buffer) -> None:
        nblocks = len(data) // self.block_size
        self.store.check_range(blkno, nblocks)
        runs = list(self._split(blkno, nblocks))
        if len(runs) == 1:
            runs[0][0].write(actor, runs[0][1], data)
        else:
            view = memoryview(data)
            offset = 0
            for dev, local, run in runs:
                nbytes = run * self.block_size
                dev.write(actor, local, view[offset:offset + nbytes])
                offset += nbytes
        self.stats.record("write", len(data))

    # -- zero-copy variants (same component ops, same accounting) -----------

    def read_refs(self, actor: Actor, blkno: int,
                  nblocks: int) -> List[ExtentRef]:
        self.store.check_range(blkno, nblocks)
        refs: List[ExtentRef] = []
        for dev, local, run in self._split(blkno, nblocks):
            refs.extend(dev.read_refs(actor, local, run))
        self.stats.record("read", nblocks * self.block_size)
        return refs

    def write_refs(self, actor: Actor, blkno: int,
                   refs: Sequence[ExtentRef]) -> None:
        nbytes = refs_nbytes(refs)
        self.store.check_range(blkno, nbytes // self.block_size)
        rest = list(refs)
        for dev, local, run in self._split(blkno, nbytes // self.block_size):
            chunk, rest = split_refs(rest, run * self.block_size)
            dev.write_refs(actor, local, chunk)
        self.stats.record("write", nbytes)

    def writev(self, actor: Actor, blkno: int,
               parts: Sequence[Buffer]) -> None:
        self.write_refs(actor, blkno,
                        [ref_of(p) for p in parts if len(p)])
