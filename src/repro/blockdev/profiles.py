"""Calibrated device profiles matching the paper's testbed (Table 5).

Calibration anchors (paper Table 5, 1 MB sequential transfers):

======================  =============  =============
Device                  Read           Write
======================  =============  =============
Raw MO (HP 6300)        451 KB/s       204 KB/s
Raw RZ57                1417 KB/s      993 KB/s
Raw RZ58                1491 KB/s      1261 KB/s
Volume change           13.5 s         (eject -> first sector readable)
======================  =============  =============

The HP7958A (HP-IB staging disk in Table 6) has no raw row in the paper;
its rates are set so the Table 6 shape (46.8 / 145 KB/s) emerges.

``HP9000_370_CPU`` models the 25 MHz 68030 host: the effective kernel
buffer-copy bandwidth explains LFS's sequential-write deficit versus FFS
(extra staging copy, paper §7.1), and the per-block FS code cost explains
why clustered FS I/O cannot reach raw streaming rates.
"""

from __future__ import annotations

from typing import Optional

from repro.blockdev.base import CPUModel
from repro.blockdev.bus import SCSIBus
from repro.blockdev.disk import DiskDevice
from repro.blockdev.geometry import DiskProfile
from repro.blockdev.jukebox import Jukebox
from repro.blockdev.mo import MODrive, MOPlatter
from repro.blockdev.tape import TapeDrive, TapeVolume
from repro.util.units import KB, MB, GB

BLOCK_SIZE = 4096

# --------------------------------------------------------------------------
# Magnetic disks
# --------------------------------------------------------------------------

RZ57 = DiskProfile(
    name="RZ57",
    capacity_bytes=1000 * MB,
    block_size=BLOCK_SIZE,
    cylinders=1925,
    rpm=3600.0,
    min_seek=0.004,
    avg_seek=0.0145,
    max_seek=0.035,
    per_op_overhead=0.001,
    media_read_rate=1417.0 * KB,
    media_write_rate=993.0 * KB,
)

RZ58 = DiskProfile(
    name="RZ58",
    capacity_bytes=1380 * MB,
    block_size=BLOCK_SIZE,
    cylinders=2112,
    rpm=4400.0,
    min_seek=0.0035,
    avg_seek=0.0125,
    max_seek=0.030,
    per_op_overhead=0.001,
    media_read_rate=1491.0 * KB,
    media_write_rate=1261.0 * KB,
)

HP7958A = DiskProfile(
    name="HP7958A",
    capacity_bytes=304 * MB,
    block_size=BLOCK_SIZE,
    cylinders=1572,
    rpm=3600.0,
    min_seek=0.006,
    avg_seek=0.0270,
    max_seek=0.055,
    per_op_overhead=0.003,
    media_read_rate=510.0 * KB,
    media_write_rate=420.0 * KB,
)

# --------------------------------------------------------------------------
# Magneto-optic (HP 6300 changer drives)
# --------------------------------------------------------------------------

HP6300_MO = DiskProfile(
    name="HP6300-MO",
    capacity_bytes=650 * MB,
    block_size=BLOCK_SIZE,
    cylinders=18750,
    rpm=2400.0,
    min_seek=0.020,
    avg_seek=0.095,
    max_seek=0.180,
    per_op_overhead=0.002,
    media_read_rate=451.0 * KB,
    media_write_rate=204.0 * KB,
)

#: Table 5's measured eject -> first-sector-readable time.
HP6300_SWAP_TIME = 13.5

# --------------------------------------------------------------------------
# Host CPU
# --------------------------------------------------------------------------

#: 25 MHz 68030: ~1.8 MB/s effective kernel buffer-copy bandwidth,
#: ~0.8 ms of FS/buffer-cache code per 4 KB block.
HP9000_370_CPU = CPUModel(copy_rate=1.8 * MB, per_block_op=0.0008)


def make_cpu() -> CPUModel:
    """A fresh host-CPU model with the paper-era parameters."""
    return CPUModel(copy_rate=HP9000_370_CPU.copy_rate,
                    per_block_op=HP9000_370_CPU.per_block_op)


# --------------------------------------------------------------------------
# Factories
# --------------------------------------------------------------------------

def make_disk(profile: DiskProfile, name: Optional[str] = None,
              bus: Optional[SCSIBus] = None,
              capacity_bytes: Optional[int] = None) -> DiskDevice:
    """Build a disk from a profile, optionally resized (e.g. the paper's
    848 MB test partition on an RZ57)."""
    if capacity_bytes is not None:
        profile = profile.scaled(capacity_bytes=capacity_bytes)
    return DiskDevice(profile, name=name, bus=bus)


def make_hp6300(n_platters: int = 32,
                n_drives: int = 2,
                bus: Optional[SCSIBus] = None,
                platter_bytes: int = 650 * MB,
                effective_platter_bytes: Optional[int] = None,
                hog_bus_on_swap: bool = True) -> Jukebox:
    """The paper's HP 6300 MO autochanger: 2 drives, 32 platters.

    ``effective_platter_bytes`` reproduces the benchmarks' artificial
    40 MB-per-platter constraint (paper §7).
    """
    volumes = [
        MOPlatter(volume_id=i, capacity_bytes=platter_bytes,
                  block_size=BLOCK_SIZE,
                  effective_capacity_bytes=effective_platter_bytes)
        for i in range(n_platters)
    ]
    drives = [MODrive(f"mo{i}", HP6300_MO, bus=bus) for i in range(n_drives)]
    return Jukebox("hp6300", drives, volumes, swap_time=HP6300_SWAP_TIME,
                   bus=bus, hog_bus_on_swap=hog_bus_on_swap)


def make_metrum(n_cartridges: int = 600,
                n_drives: int = 2,
                bus: Optional[SCSIBus] = None,
                cartridge_bytes: int = 14 * GB + 512 * MB,
                effective_cartridge_bytes: Optional[int] = None) -> Jukebox:
    """The Sequoia Metrum robotic tape unit: ~14.5 GB per cartridge,
    600 cartridges, ~9 TB total."""
    volumes = [
        TapeVolume(volume_id=i, capacity_bytes=cartridge_bytes,
                   block_size=BLOCK_SIZE,
                   effective_capacity_bytes=effective_cartridge_bytes)
        for i in range(n_cartridges)
    ]
    drives = [
        TapeDrive(f"metrum{i}", bus=bus,
                  read_rate=1.2 * MB, write_rate=1.0 * MB,
                  wind_rate=120 * MB, thread_time=25.0,
                  block_size=BLOCK_SIZE)
        for i in range(n_drives)
    ]
    return Jukebox("metrum", drives, volumes, swap_time=52.0, bus=bus,
                   hog_bus_on_swap=False)


def make_sony_worm(n_platters: int = 100,
                   n_drives: int = 2,
                   bus: Optional[SCSIBus] = None,
                   platter_bytes: int = 3270 * MB) -> Jukebox:
    """The Sony write-once optical jukebox (~327 GB total)."""
    worm_profile = HP6300_MO.scaled(name="Sony-WORM",
                                    capacity_bytes=platter_bytes,
                                    media_read_rate=600.0 * KB,
                                    media_write_rate=300.0 * KB)
    volumes = [
        MOPlatter(volume_id=i, capacity_bytes=platter_bytes,
                  block_size=BLOCK_SIZE, write_once=True)
        for i in range(n_platters)
    ]
    drives = [MODrive(f"worm{i}", worm_profile, bus=bus)
              for i in range(n_drives)]
    return Jukebox("sony-worm", drives, volumes, swap_time=9.0, bus=bus,
                   hog_bus_on_swap=False)
