"""Disk geometry and seek/rotation timing.

The model: an operation on a rotating device costs

    per_op_overhead + seek(cylinder distance) + rotational latency
        + nbytes / media_rate

except that a *streaming* operation — one that starts at exactly the block
where the previous operation ended, issued with negligible think time —
skips the seek and rotational terms, because the head is already there and
the platter hasn't spun away.  This single rule is what makes sequential
raw transfers run at the calibrated Table 5 rates while FS-level clustered
I/O (which thinks between clusters) pays a rotation per cluster, and random
frame I/O (Table 2) pays a full seek + rotation per frame.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace


def seek_time(distance_cyl: int, ncyl: int, min_seek: float,
              avg_seek: float, max_seek: float) -> float:
    """Seek duration for a move of ``distance_cyl`` cylinders.

    Uses the standard square-root acceleration model anchored so that a
    one-third-stroke seek costs the quoted average:

        seek(d) = min + (avg - min) * sqrt(d / (ncyl / 3))   (capped at max)
    """
    if distance_cyl <= 0:
        return 0.0
    anchor = max(ncyl / 3.0, 1.0)
    t = min_seek + (avg_seek - min_seek) * math.sqrt(distance_cyl / anchor)
    return min(t, max_seek)


@dataclass(frozen=True)
class DiskProfile:
    """Timing parameters for one rotating device.

    ``media_read_rate`` / ``media_write_rate`` are the *streaming* rates —
    what a long run of back-to-back sequential transfers achieves — and are
    calibrated directly to the paper's Table 5 raw measurements.
    """

    name: str
    capacity_bytes: int
    block_size: int = 4096
    cylinders: int = 1500
    rpm: float = 3600.0
    min_seek: float = 0.0025
    avg_seek: float = 0.0145
    max_seek: float = 0.030
    per_op_overhead: float = 0.001
    media_read_rate: float = 1417.0 * 1024
    media_write_rate: float = 993.0 * 1024
    #: Gap (seconds) under which a back-to-back sequential op still streams.
    streaming_gap: float = 0.005
    #: True for write-once media (Sony WORM jukebox platters).
    write_once: bool = False
    extras: dict = field(default_factory=dict, compare=False)

    @property
    def capacity_blocks(self) -> int:
        return self.capacity_bytes // self.block_size

    @property
    def rotation_time(self) -> float:
        """One full revolution, in seconds."""
        return 60.0 / self.rpm

    @property
    def avg_rotational_latency(self) -> float:
        """Half a revolution — expected latency to the target sector."""
        return self.rotation_time / 2.0

    @property
    def blocks_per_cylinder(self) -> int:
        return max(1, self.capacity_blocks // self.cylinders)

    def cylinder_of(self, blkno: int) -> int:
        """Cylinder holding ``blkno``."""
        return min(blkno // self.blocks_per_cylinder, self.cylinders - 1)

    def seek(self, from_blk: int, to_blk: int) -> float:
        """Seek time between two block addresses."""
        distance = abs(self.cylinder_of(to_blk) - self.cylinder_of(from_blk))
        return seek_time(distance, self.cylinders, self.min_seek,
                         self.avg_seek, self.max_seek)

    def transfer(self, nbytes: int, is_write: bool) -> float:
        """Streaming media transfer time for ``nbytes``."""
        rate = self.media_write_rate if is_write else self.media_read_rate
        return nbytes / rate

    def scaled(self, **overrides) -> "DiskProfile":
        """A copy with fields replaced (convenience for tests/sweeps)."""
        return replace(self, **overrides)
