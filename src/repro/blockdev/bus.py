"""The SCSI bus as a shared timeline resource.

The paper notes two bus-related artefacts we reproduce:

* the magnetic disk and the MO changer shared one SCSI bus, yet bus
  bandwidth was *not* the limiting factor (section 7.3) — devices
  disconnect during seeks and only hold the bus for data transfer;
* the autochanger's device driver did **not** disconnect, so a media swap
  "hogs" the bus for many seconds (section 7), stalling disk I/O.
"""

from __future__ import annotations

from repro.sim.actor import Actor
from repro.sim.resources import TimelineResource


class SCSIBus(TimelineResource):
    """A SCSI bus: devices occupy it only while moving data, unless hogging."""

    def __init__(self, name: str = "scsi0",
                 bandwidth: float = 4.0 * 1024 * 1024) -> None:
        super().__init__(name)
        #: Raw bus bandwidth (SCSI-I ~4-5 MB/s); transfers cannot beat this.
        self.bandwidth = bandwidth
        self.hog_seconds = 0.0

    def transfer(self, actor: Actor, nbytes: int,
                 device_seconds: float) -> float:
        """Occupy the bus for a data transfer of ``nbytes``.

        The occupancy is the larger of the device's own transfer time and
        the time the bytes need on the wire; returns the duration.
        """
        wire = nbytes / self.bandwidth
        duration = max(device_seconds, wire)
        self.occupy(actor, duration)
        return duration

    def hog(self, actor: Actor, seconds: float) -> None:
        """Hold the bus for ``seconds`` with no data moving (media swap)."""
        self.occupy(actor, seconds)
        self.hog_seconds += seconds
