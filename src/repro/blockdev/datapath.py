"""Data-path plumbing: extent refs, copy accounting, and the store mode.

The paper's design argument is that 1 MB segments amortize device costs
into large sequential transfers; the simulator's *host* data path should
match.  This module carries the three shared pieces:

* :class:`ExtentRef` — a (buffer, offset, length) handle on a byte range
  inside a store.  Refs are how whole segment images travel between
  stores without being copied: a ref adopted by a store is kept by
  reference, under the contract that nobody mutates the referenced
  region afterwards (stores themselves never mutate extent buffers in
  place — writes always *replace* extents).
* **Copy accounting** — every host-memory byte copy performed by the
  device data path funnels through :func:`count_copy`, which feeds both
  a cheap process-local counter (readable with the metrics registry
  disabled) and the ``datapath_bytes_copied_total`` metric.  The perf
  harness A/Bs this number across store modes.
* **The store mode** — ``"extent"`` (the default
  :class:`~repro.blockdev.extent.ExtentStore`) or ``"blockdict"`` (the
  historical per-block :class:`~repro.blockdev.base.BlockStore`, kept
  as the baseline for the A/B in ``python -m repro.bench --perf``).
  The mode is read at store construction time; it is process-global
  because devices are built before any filesystem config exists.

Virtual-time charging is untouched by any of this: both modes issue the
same device operations with the same sizes, so simulated results are
bit-identical — only host CPU work differs.
"""

from __future__ import annotations

import os
from typing import List, Sequence, Union

from repro import obs

__all__ = [
    "Buffer",
    "ExtentRef",
    "block_views",
    "run_views",
    "MODE_BLOCKDICT",
    "MODE_EXTENT",
    "bytes_copied_total",
    "count_copy",
    "flush_copy_metric",
    "materialize_refs",
    "ref_of",
    "refs_nbytes",
    "reset_copy_counter",
    "sanitizer",
    "set_sanitizer",
    "set_store_mode",
    "store_mode",
    "zeros",
]

#: Acceptable data-bearing argument types for store writes.
Buffer = Union[bytes, bytearray, memoryview]

MODE_EXTENT = "extent"
MODE_BLOCKDICT = "blockdict"
_MODES = (MODE_EXTENT, MODE_BLOCKDICT)

#: Environment override for the initial store mode (CI experiments).
MODE_ENV = "REPRO_DATAPATH_MODE"

_mode = os.environ.get(MODE_ENV, MODE_EXTENT)
if _mode not in _MODES:
    _mode = MODE_EXTENT


def store_mode() -> str:
    """The store implementation new devices will be built with."""
    return _mode


def set_store_mode(mode: str) -> str:
    """Select the store implementation; returns the previous mode."""
    global _mode
    if mode not in _MODES:
        raise ValueError(f"unknown datapath mode {mode!r}; "
                         f"expected one of {_MODES}")
    old, _mode = _mode, mode
    return old


# -- borrow sanitizer registry -----------------------------------------------
#
# The runtime borrow sanitizer (repro.analysis.sanitize) registers itself
# here; the stores call the three hooks through this indirection so the
# block-device layer never imports the analysis package.  With nothing
# installed the cost is one None check per store operation.

_SANITIZER = None


def set_sanitizer(san):
    """Install (or, with None, remove) the borrow sanitizer; returns the
    previously installed one."""
    global _SANITIZER
    old, _SANITIZER = _SANITIZER, san
    return old


def sanitizer():
    """The installed borrow sanitizer, or None."""
    return _SANITIZER


# -- copy accounting ---------------------------------------------------------

_bytes_copied = 0
#: High-water mark of what has been published into the obs metric; the
#: unpublished delta is flushed lazily by :func:`flush_copy_metric`.
_bytes_published = 0


def count_copy(nbytes: int) -> None:
    """Account ``nbytes`` of host-memory copying in the data path.

    Deliberately just an integer add: this sits on the per-block hot
    path, so a registry lookup per call would itself become the ledger
    overhead the extent mode exists to remove.  The accumulated delta
    reaches the ``datapath_bytes_copied_total`` metric through
    :func:`flush_copy_metric`, which ``obs`` runs before every snapshot
    and reset — observers never see a stale value, and runs with no
    observer pay nothing."""
    global _bytes_copied
    _bytes_copied += nbytes


def flush_copy_metric() -> int:
    """Publish the unpublished copied-byte delta into the obs metric;
    returns the delta.  Registered as an ``obs`` flusher at import."""
    global _bytes_published
    delta = _bytes_copied - _bytes_published
    if delta:
        obs.counter("datapath_bytes_copied_total",
                    "host bytes physically copied by the device data "
                    "path").inc(delta)
        _bytes_published = _bytes_copied
    return delta


def bytes_copied_total() -> int:
    """Process-lifetime copied bytes (independent of the obs registry)."""
    return _bytes_copied


def reset_copy_counter() -> int:
    """Zero the local copy counter (bench run boundary); returns old value."""
    global _bytes_copied, _bytes_published
    old, _bytes_copied = _bytes_copied, 0
    _bytes_published = 0
    return old


obs.register_flusher(flush_copy_metric)


# -- extent refs -------------------------------------------------------------

class ExtentRef:
    """A borrowed byte range: ``buf[start:start + nbytes]``.

    ``buf`` is a :class:`bytes`, :class:`bytearray`, or
    :class:`memoryview` base object.  A ref handed to
    ``write_refs``/``line_write_refs`` is *adopted*: the receiving store
    keeps the reference instead of copying, so the handing-over side
    must never mutate the range again (append-only staging buffers and
    immutable ``bytes`` images satisfy this by construction).
    """

    __slots__ = ("buf", "start", "nbytes")

    def __init__(self, buf: Buffer, start: int, nbytes: int) -> None:
        self.buf = buf
        self.start = start
        self.nbytes = nbytes

    def view(self) -> memoryview:
        """A zero-copy window on the referenced range."""
        return memoryview(self.buf)[self.start:self.start + self.nbytes]

    def __len__(self) -> int:
        return self.nbytes

    def __repr__(self) -> str:
        return (f"ExtentRef({type(self.buf).__name__}[{self.start}:"
                f"{self.start + self.nbytes}])")


def ref_of(data: Buffer) -> ExtentRef:
    """Wrap a whole buffer as one ref."""
    return ExtentRef(data, 0, len(data))


def refs_nbytes(refs: Sequence[ExtentRef]) -> int:
    """Total bytes covered by a ref list."""
    return sum(r.nbytes for r in refs)


def split_refs(refs: Sequence[ExtentRef], nbytes: int
               ) -> "tuple[List[ExtentRef], List[ExtentRef]]":
    """Split a ref list at a byte boundary, zero-copy (refs that straddle
    the boundary are narrowed, their buffers shared)."""
    head: List[ExtentRef] = []
    tail: List[ExtentRef] = []
    need = nbytes
    for r in refs:
        if need <= 0:
            tail.append(r)
        elif r.nbytes <= need:
            head.append(r)
            need -= r.nbytes
        else:
            head.append(ExtentRef(r.buf, r.start, need))
            tail.append(ExtentRef(r.buf, r.start + need, r.nbytes - need))
            need = 0
    return head, tail


def run_views(refs: Sequence[ExtentRef], block_size: int) -> List[Buffer]:
    """Contiguous whole-block *runs* over a ref list, zero-copy.

    This is the run-batched counterpart of :func:`block_views`: one
    buffer per contiguous ref instead of one per block, so a 1 MB
    segment that travels as a single ref stays a single memoryview —
    O(runs) objects, not O(256 blocks).  A ref that is exactly one
    whole-``bytes`` image passes through unchanged; only a block that
    straddles two refs is joined (and counted) — store refs are
    block-aligned, so in practice nothing is copied.
    """
    out: List[Buffer] = []
    carry: List[memoryview] = []
    carry_len = 0
    for ref in refs:
        off = 0
        if carry_len:
            take = min(block_size - carry_len, ref.nbytes)
            carry.append(ref.view()[:take])
            carry_len += take
            off = take
            if carry_len == block_size:
                count_copy(block_size)
                out.append(b"".join(bytes(v) for v in carry))
                carry, carry_len = [], 0
        whole = (ref.nbytes - off) // block_size
        if whole:
            nbytes = whole * block_size
            if (off == 0 and isinstance(ref.buf, bytes)
                    and ref.start == 0 and ref.nbytes == nbytes
                    and len(ref.buf) == nbytes):
                out.append(ref.buf)  # an adopted whole image, as-is
            else:
                out.append(ref.view()[off:off + nbytes])
            off += nbytes
        if off < ref.nbytes:
            carry.append(ref.view()[off:])
            carry_len += ref.nbytes - off
    if carry_len:
        raise ValueError(
            f"refs not block-aligned: {carry_len} trailing bytes")
    return out


def block_views(refs: Sequence[ExtentRef], block_size: int) -> List[Buffer]:
    """Per-block buffers over a ref list, zero-copy.

    A ref holding exactly one whole-``bytes`` block passes through
    unchanged; larger refs yield memoryview slices.  Prefer
    :func:`run_views` on hot paths — it hands back whole contiguous
    runs instead of splitting them into per-block objects.
    """
    out: List[Buffer] = []
    for run in run_views(refs, block_size):
        nbytes = len(run)
        if nbytes == block_size:
            out.append(run)
            continue
        view = run if isinstance(run, memoryview) else memoryview(run)
        out.extend(view[i:i + block_size]
                   for i in range(0, nbytes, block_size))
    return out


def materialize_refs(refs: Sequence[ExtentRef]) -> bytes:
    """Copy a ref list into one contiguous ``bytes`` (counted).

    The single-ref whole-``bytes`` case is free: the ref *is* already an
    immutable contiguous image, so it is returned as-is.
    """
    if len(refs) == 1:
        ref = refs[0]
        if (isinstance(ref.buf, bytes) and ref.start == 0
                and ref.nbytes == len(ref.buf)):
            return ref.buf
    total = refs_nbytes(refs)
    count_copy(total)
    return b"".join(r.view() for r in refs)


# -- shared zero source ------------------------------------------------------

_zero_buf = bytes(0)


def zeros(nbytes: int) -> bytes:
    """A shared all-zeros buffer at least ``nbytes`` long (callers slice
    or ref into it; sparse reads of unwritten ranges borrow from here
    instead of allocating per read)."""
    global _zero_buf
    if len(_zero_buf) < nbytes:
        _zero_buf = bytes(max(nbytes, 2 * len(_zero_buf)))
    return _zero_buf


def zero_refs(nbytes: int) -> List[ExtentRef]:
    """Refs describing ``nbytes`` of zeros (one ref, shared buffer)."""
    return [ExtentRef(zeros(nbytes), 0, nbytes)]
