"""Process-death simulation: write traps and media imaging.

A crash in this simulator is modelled honestly: every in-memory object —
filesystem, cache directory, health registry, scheduler, clocks — is
abandoned, and the only state that survives is what had reached the
device stores.  :func:`snapshot_media` freezes those stores as images;
a fresh device farm built over :func:`restore_media` is "the same
platters in a new machine", ready for ``mount_highlight`` +
``fs.recover()``.

:class:`CrashTrap` + :class:`TrappedStore` inject the kill point: the
trap counts store-level writes across *all* trapped devices and, on the
chosen write, lets only a prefix of it reach the medium (a torn write)
before raising :class:`SimulatedCrash`.  Wrapping at the store layer —
below the timed device models — means disk, MO, and tape writes are all
crashable through one mechanism, the same delegation idiom as the torn-
write tests' ``TornWriteDisk``.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.errors import ReproError


class SimulatedCrash(ReproError):
    """The process model died at an armed crash point."""


class CrashTrap:
    """Counts writes across trapped stores; fires once when armed."""

    def __init__(self) -> None:
        self.countdown: Optional[int] = None
        self.tear_blocks = 0
        self.fired = False
        self.writes_seen = 0

    def arm(self, after_writes: int, tear_blocks: int = 0) -> None:
        """Crash on the write following ``after_writes`` complete ones,
        letting its first ``tear_blocks`` blocks reach the medium."""
        self.countdown = after_writes
        self.tear_blocks = tear_blocks
        self.fired = False

    def disarm(self) -> None:
        self.countdown = None

    def check(self) -> Optional[int]:
        """Called per store write: ``None`` to proceed, or the number of
        blocks to let through before the crash."""
        self.writes_seen += 1
        if self.countdown is None or self.fired:
            return None
        if self.countdown > 0:
            self.countdown -= 1
            return None
        self.fired = True
        return self.tear_blocks


class TrappedStore:
    """Delegating store wrapper that enforces a :class:`CrashTrap`."""

    def __init__(self, inner, trap: CrashTrap) -> None:
        self.inner = inner
        self.trap = trap

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def _tear(self, blkno: int, data: bytes, keep_blocks: int) -> None:
        bs = self.inner.block_size
        kept = bytes(data)[:keep_blocks * bs]
        if kept:
            self.inner.write(blkno, kept)
        raise SimulatedCrash(
            f"crash point hit: write at block {blkno} tore after "
            f"{keep_blocks} of {len(data) // bs} blocks")

    def write(self, blkno, data):
        keep = self.trap.check()
        if keep is not None:
            self._tear(blkno, data, keep)
        self.inner.write(blkno, data)

    def writev(self, blkno, parts):
        keep = self.trap.check()
        if keep is not None:
            self._tear(blkno, b"".join(bytes(p) for p in parts), keep)
        self.inner.writev(blkno, parts)

    def write_refs(self, blkno, refs):
        keep = self.trap.check()
        if keep is not None:
            self._tear(blkno, b"".join(bytes(r.view()) for r in refs), keep)
        self.inner.write_refs(blkno, refs)


def _unwrap(store):
    while isinstance(store, TrappedStore):
        store = store.inner
    return store


def install_trap(devices: Iterable, trap: CrashTrap) -> None:
    """Wrap each device's store (disk devices and removable volumes both
    carry ``.store``) so the shared trap sees every write."""
    for dev in devices:
        dev.store = TrappedStore(dev.store, trap)


def snapshot_media(disk, jukebox) -> Dict[str, object]:
    """Freeze every medium's current contents (the post-crash state)."""
    return {
        "disk": _unwrap(disk.store).snapshot(),
        "volumes": {vid: _unwrap(vol.store).snapshot()
                    for vid, vol in jukebox.volumes.items()},
    }


def restore_media(images: Dict[str, object], disk, jukebox) -> None:
    """Load snapshotted media into a freshly built device farm."""
    _unwrap(disk.store).restore(images["disk"])
    for vid, image in images["volumes"].items():
        _unwrap(jukebox.volumes[vid].store).restore(image)


def restart_highlight(images: Dict[str, object], *, disk_bytes: int,
                      n_platters: int, platter_bytes: int, config=None):
    """Build a fresh device farm, load the crashed media, and remount.

    Returns ``(fs, disk, jukebox, footprint)``.  The caller wires its own
    :class:`~repro.persist.manager.PersistManager` (and health/replica
    registries) over the mounted filesystem and calls ``fs.recover()`` —
    exactly the sequence a real restart performs.
    """
    from repro.blockdev import profiles
    from repro.blockdev.bus import SCSIBus
    from repro.core.highlight import HighLightFS
    from repro.footprint.robot import JukeboxFootprint

    bus = SCSIBus()
    disk = profiles.make_disk(profiles.RZ57, bus=bus,
                              capacity_bytes=disk_bytes)
    jukebox = profiles.make_hp6300(n_platters=n_platters, bus=bus,
                                   effective_platter_bytes=platter_bytes)
    restore_media(images, disk, jukebox)
    footprint = JukeboxFootprint(jukebox)
    fs = HighLightFS.mount_highlight(disk, footprint, config)
    return fs, disk, jukebox, footprint
