"""Background scrubbing: full-image checksums over every storage tier.

The LFS segment summary only checksums four probe bytes per block
(:func:`repro.util.checksum.cksum_blocks`) — enough to catch torn
writes, useless against silent bit-rot on media that sits on a shelf
for years.  The scrubber closes that gap:

* :class:`SegmentCRCLedger` — a full-image CRC32 per written tertiary
  segment, folded over the Footprint write path as the data goes by
  (writes on this stack are whole-segment images, so no reconstruction
  is ever needed) and persisted with every ``repro.persist`` checkpoint;
* :class:`Scrubber` — a daemon that walks the ledger at a configurable
  virtual-time rate, re-reads each segment from its volume (and,
  optionally, each sealed cache line from the staging disk), and
  compares CRCs.  A tertiary mismatch feeds the PR 5 quarantine/repair
  path (``health.record_error(..., permanent=True)`` — the
  :class:`~repro.faults.repair.RepairDaemon` then re-homes the live
  data); a cache-line mismatch ejects the line so the next access
  demand-fetches the authoritative tertiary copy.
"""

from __future__ import annotations

import zlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro import obs
from repro.core.addressing import line_read
from repro.errors import DeviceError
from repro.sim.actor import Actor

EV_SCRUB_PASS = obs.register_event_type("scrub_pass")
EV_SCRUB_MISMATCH = obs.register_event_type("scrub_mismatch")

#: Retry class used for scrub reads through a RecoveringFootprint.
SCRUB_CLASS = "repair"


def image_crc(data) -> int:
    """CRC32 of a full segment image (bytes or memoryview)."""
    return zlib.crc32(data) & 0xFFFFFFFF


class SegmentCRCLedger:
    """Full-image CRC32 per written tertiary segment location.

    Keyed by ``(volume_id, seg_in_vol)`` — replica copies get their own
    entries.  Fed by the Footprint write observer hook
    (:attr:`repro.footprint.robot.JukeboxFootprint.write_observer`):
    every successful whole-segment write records its CRC; a torn or
    failed write records nothing, which is exactly what lets the
    scrubber find the damage later.
    """

    def __init__(self, blocks_per_seg: int, block_size: int) -> None:
        self.blocks_per_seg = blocks_per_seg
        self.block_size = block_size
        self._crcs: Dict[Tuple[int, int], int] = {}

    def __len__(self) -> int:
        return len(self._crcs)

    def get(self, volume_id: int, seg_in_vol: int) -> Optional[int]:
        return self._crcs.get((volume_id, seg_in_vol))

    def observe_write(self, volume_id: int, blkno: int, refs) -> None:
        """Footprint write observer: fold a successful write's CRC in.

        ``refs`` is the write's :class:`~repro.blockdev.datapath
        .ExtentRef` list.  Only an exactly segment-aligned, segment-sized
        write yields a ledger entry; any other shape invalidates the
        entries it touches (no such writes occur on the current stack,
        but a stale CRC must never outlive the bytes it described).
        """
        nbytes = sum(r.nbytes for r in refs)
        nblocks = nbytes // self.block_size
        seg, offset = divmod(blkno, self.blocks_per_seg)
        if offset == 0 and nblocks == self.blocks_per_seg:
            crc = 0
            for r in refs:
                crc = zlib.crc32(r.view(), crc)
            self._crcs[(volume_id, seg)] = crc & 0xFFFFFFFF
            return
        last_seg = (blkno + max(nblocks, 1) - 1) // self.blocks_per_seg
        for s in range(seg, last_seg + 1):
            self._crcs.pop((volume_id, s), None)

    def drop_volume(self, volume_id: int) -> None:
        """Forget every entry on ``volume_id`` (retired media)."""
        for key in [k for k in self._crcs if k[0] == volume_id]:
            del self._crcs[key]

    # -- persistence --------------------------------------------------------

    def entries(self) -> List[List[int]]:
        """JSON-encodable dump: sorted ``[volume_id, seg_in_vol, crc]``."""
        return [[vid, seg, crc]
                for (vid, seg), crc in sorted(self._crcs.items())]

    def load(self, entries: Iterable[Iterable[int]]) -> None:
        self._crcs = {(vid, seg): crc for vid, seg, crc in entries}


class Scrubber:
    """Walks the CRC ledger verifying live segments across all tiers.

    ``pacing`` is the virtual-time cost charged between segment
    verifications (the configurable scrub rate); the medium reads
    themselves are charged by the devices as usual.
    """

    def __init__(self, fs, ledger: SegmentCRCLedger, health, *,
                 pacing: float = 0.25, include_cache: bool = True) -> None:
        self.fs = fs
        self.ledger = ledger
        self.health = health
        self.pacing = pacing
        self.include_cache = include_cache
        self._cursor = 0
        self._verified = obs.counter(
            "scrub_segments_verified_total",
            "segment images whose scrub CRC matched", ("tier",))
        self._mismatches = obs.counter(
            "scrub_mismatches_total",
            "segment images failing scrub CRC verification", ("tier",))
        self._skipped = obs.counter(
            "scrub_segments_skipped_total",
            "ledger entries skipped (volume not serving, stale cursor)")
        self._cycles = obs.counter(
            "scrub_cycles_total", "completed scrub cycles")

    # -- geometry helpers ---------------------------------------------------

    def _vol_index(self, volume_id: int) -> Optional[int]:
        for idx, meta in enumerate(self.fs.tsegfile.volumes):
            if meta.volume_id == volume_id:
                return idx
        return None

    def _primary_location(self, tsegno: int) -> Tuple[int, int]:
        vol, seg_in_vol = self.fs.aspace.volume_of(tsegno)
        return self.fs.tsegfile.volumes[vol].volume_id, seg_in_vol

    # -- verification -------------------------------------------------------

    def _verify_tertiary(self, actor: Actor, volume_id: int,
                         seg_in_vol: int, expected: int) -> bool:
        fs = self.fs
        bps = fs.aspace.blocks_per_seg
        fp = fs.footprint
        ctx = getattr(fp, "request_class", None)
        try:
            if ctx is not None:
                with ctx(SCRUB_CLASS):
                    image = fp.read(actor, volume_id, seg_in_vol * bps, bps)
            else:
                image = fp.read(actor, volume_id, seg_in_vol * bps, bps)
        except DeviceError:
            # The read itself failed; RecoveringFootprint already fed the
            # health registry, nothing left for the scrubber to add.
            self._skipped.inc()
            return False
        if image_crc(image) == expected:
            self._verified.labels(tier="tertiary").inc()
            self.health.record_success(volume_id)
            return True
        self._mismatches.labels(tier="tertiary").inc()
        obs.event(EV_SCRUB_MISMATCH, actor.time, tier="tertiary",
                  volume=volume_id, seg=seg_in_vol)
        self.health.record_error(volume_id, actor.time, permanent=True,
                                 kind="checksum_mismatch")
        return False

    def _verify_cache_line(self, actor: Actor, tsegno: int,
                           disk_segno: int, expected: int) -> bool:
        fs = self.fs
        bps = fs.aspace.blocks_per_seg
        image = line_read(fs.device, actor, fs.seg_base(disk_segno), bps,
                          fs.aspace)
        if image_crc(image) == expected:
            self._verified.labels(tier="cache").inc()
            return True
        self._mismatches.labels(tier="cache").inc()
        obs.event(EV_SCRUB_MISMATCH, actor.time, tier="cache",
                  volume=tsegno, seg=disk_segno)
        # The disk copy rotted but the tertiary copy is authoritative:
        # drop the line so the next access demand-fetches clean bytes.
        fs.cache.eject(tsegno, actor)
        return False

    def run_cycle(self, actor: Actor) -> Dict[str, int]:
        """One full scrub pass over every live ledger entry.

        Returns ``{"verified": n, "mismatches": n, "skipped": n}``.
        """
        fs = self.fs
        report = {"verified": 0, "mismatches": 0, "skipped": 0}
        for vid, seg_in_vol, expected in self.ledger.entries():
            vol = self._vol_index(vid)
            if vol is None \
                    or seg_in_vol >= fs.tsegfile.volumes[vol].next_free:
                report["skipped"] += 1
                self._skipped.inc()
                continue
            if not self.health.health_of(vid).serving:
                report["skipped"] += 1
                self._skipped.inc()
                continue
            actor.sleep(self.pacing)
            if self._verify_tertiary(actor, vid, seg_in_vol, expected):
                report["verified"] += 1
            else:
                report["mismatches"] += 1
        if self.include_cache:
            for tsegno, disk_segno, staging in fs.cache.entries():
                if staging:
                    continue  # not yet on tertiary: no reference CRC
                vid, seg_in_vol = self._primary_location(tsegno)
                expected = self.ledger.get(vid, seg_in_vol)
                if expected is None:
                    report["skipped"] += 1
                    self._skipped.inc()
                    continue
                actor.sleep(self.pacing)
                if self._verify_cache_line(actor, tsegno, disk_segno,
                                           expected):
                    report["verified"] += 1
                else:
                    report["mismatches"] += 1
        self._cycles.inc()
        obs.event(EV_SCRUB_PASS, actor.time, **report)
        return report
