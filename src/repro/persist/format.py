"""The versioned on-disk persistence-checkpoint format.

The LFS superblock checkpoint (``repro.lfs.superblock``) anchors the
*filesystem* image: ifile address and log tail.  HighLight keeps more
state than the log records — the segment-cache directory, the Footprint
volume/health registry, queued scheduler requests, the replica catalog,
the scrub CRC ledger, and operating counters — all of which a process
death would otherwise lose (the CASTOR lesson: a hierarchical storage
manager is only credible once its disk-pool/tape state survives
restarts).  ``repro.persist`` checkpoints that state into a dedicated
area of the reserved boot blocks, anchored from the superblock's
``persist_root`` field.

Layout
------

Two slots alternate (same discipline as the superblock's dual
checkpoint slots) so a crash mid-write always leaves the previous image
intact.  Each slot is :data:`SLOT_BLOCKS` blocks::

    +-----------------------------+  slot base (reserved block 1 or 8)
    | header (32 bytes)           |
    |   magic, version, serial,   |
    |   payload_len, payload_crc, |
    |   header_crc                |
    +-----------------------------+
    | zlib-compressed payload     |
    +-----------------------------+
    | zero padding to slot end    |
    +-----------------------------+

The uncompressed payload is a sequence of named, individually
checksummed sections::

    u8 name_len | name (utf-8) | u32 body_len | u32 body_crc | body

Section bodies are canonical JSON (sorted keys, compact separators) so
identical system states encode to identical bytes — the golden-trace
suite relies on that determinism.  Unknown sections are preserved by
:func:`decode_payload` and ignored by consumers, which is what makes the
format versionable: a newer writer may add sections an older reader
skips.  An incompatible layout change must bump :data:`PERSIST_VERSION`.
"""

from __future__ import annotations

import json
import struct
import zlib
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import CorruptFilesystem
from repro.lfs.constants import BLOCK_SIZE, RESERVED_BLOCKS
from repro.util.checksum import cksum32

#: "HLpc" — HighLight persistence checkpoint.
PERSIST_MAGIC = 0x484C7063
PERSIST_VERSION = 1

#: Blocks per slot.  Two slots plus the superblock (block 0) must fit in
#: the reserved boot area; block 15 stays spare.
SLOT_BLOCKS = 7
SLOT_BASES = (1, 1 + SLOT_BLOCKS)
SLOT_BYTES = SLOT_BLOCKS * BLOCK_SIZE
assert SLOT_BASES[1] + SLOT_BLOCKS <= RESERVED_BLOCKS

# magic, version, serial (u64), payload_len, payload_crc, header_crc
_HEADER = struct.Struct("<IIQIII")

# Section names written by the current code (readers tolerate extras).
SEC_EPOCH = "epoch"
SEC_CACHEMAP = "cachemap"
SEC_HEALTH = "health"
SEC_SCHED = "sched"
SEC_COUNTERS = "counters"
SEC_REPLICAS = "replicas"
SEC_CRC_LEDGER = "crc_ledger"


class PersistFormatError(CorruptFilesystem):
    """A persistence slot failed structural or checksum validation."""


@dataclass
class PersistImage:
    """One decoded (or to-be-encoded) persistence checkpoint."""

    serial: int = 0
    sections: Dict[str, object] = field(default_factory=dict)


def encode_payload(sections: Dict[str, object]) -> bytes:
    """Frame ``sections`` (name -> JSON-encodable body) as payload bytes."""
    out = bytearray()
    for name in sorted(sections):
        raw = name.encode("utf-8")
        if not raw or len(raw) > 255:
            raise PersistFormatError(f"bad section name {name!r}")
        body = json.dumps(sections[name], sort_keys=True,
                          separators=(",", ":")).encode("utf-8")
        out += struct.pack("<B", len(raw)) + raw
        out += struct.pack("<II", len(body), cksum32(body))
        out += body
    return bytes(out)


def decode_payload(payload: bytes) -> Dict[str, object]:
    """Parse framed sections; raises :class:`PersistFormatError` on damage."""
    sections: Dict[str, object] = {}
    pos, end = 0, len(payload)
    while pos < end:
        (name_len,) = struct.unpack_from("<B", payload, pos)
        pos += 1
        if pos + name_len + 8 > end:
            raise PersistFormatError("truncated section header")
        name = payload[pos:pos + name_len].decode("utf-8")
        pos += name_len
        body_len, body_crc = struct.unpack_from("<II", payload, pos)
        pos += 8
        if pos + body_len > end:
            raise PersistFormatError(f"truncated section {name!r}")
        body = payload[pos:pos + body_len]
        pos += body_len
        if cksum32(body) != body_crc:
            raise PersistFormatError(f"section {name!r} checksum mismatch")
        sections[name] = json.loads(body.decode("utf-8"))
    return sections


def encode_slot(image: PersistImage) -> bytes:
    """Encode an image as one full slot (``SLOT_BYTES`` bytes)."""
    payload = zlib.compress(encode_payload(image.sections), 6)
    if _HEADER.size + len(payload) > SLOT_BYTES:
        raise PersistFormatError(
            f"persistence payload of {len(payload)} bytes exceeds the "
            f"{SLOT_BYTES - _HEADER.size}-byte slot capacity")
    head = struct.pack("<IIQII", PERSIST_MAGIC, PERSIST_VERSION,
                       image.serial, len(payload), cksum32(payload))
    head += struct.pack("<I", cksum32(head))
    return (head + payload).ljust(SLOT_BYTES, b"\0")


def peek_serial(raw: bytes) -> Optional[int]:
    """Serial of the slot whose first block is ``raw``, without decoding
    the payload; ``None`` for a blank or structurally invalid header."""
    if len(raw) < _HEADER.size:
        return None
    head = raw[:_HEADER.size - 4]
    (stored,) = struct.unpack_from("<I", raw, _HEADER.size - 4)
    magic, version, serial, _payload_len, _payload_crc = struct.unpack(
        "<IIQII", head)
    if magic != PERSIST_MAGIC or version != PERSIST_VERSION \
            or cksum32(head) != stored:
        return None
    return serial


def decode_slot(raw: bytes) -> Optional[PersistImage]:
    """Decode one slot.

    Returns ``None`` for a blank (never-written, all-zero) slot; raises
    :class:`PersistFormatError` when the slot carries damaged data — the
    caller treats that slot as lost and falls back to the other one.
    """
    if len(raw) < _HEADER.size:
        raise PersistFormatError("short persistence slot")
    head = raw[:_HEADER.size - 4]
    (stored,) = struct.unpack_from("<I", raw, _HEADER.size - 4)
    magic, version, serial, payload_len, payload_crc = struct.unpack(
        "<IIQII", head)
    if magic == 0 and not any(raw):
        return None  # blank media: persistence never checkpointed here
    if cksum32(head) != stored:
        raise PersistFormatError("persistence header checksum mismatch")
    if magic != PERSIST_MAGIC:
        raise PersistFormatError(f"bad persistence magic {magic:#x}")
    if version != PERSIST_VERSION:
        raise PersistFormatError(
            f"persistence format v{version} not supported "
            f"(expected v{PERSIST_VERSION})")
    start = _HEADER.size
    if start + payload_len > len(raw):
        raise PersistFormatError("persistence payload overruns the slot")
    payload = raw[start:start + payload_len]
    if cksum32(payload) != payload_crc:
        raise PersistFormatError("persistence payload checksum mismatch")
    try:
        sections = decode_payload(zlib.decompress(payload))
    except zlib.error as exc:
        raise PersistFormatError(f"persistence payload inflate: {exc}") \
            from exc
    return PersistImage(serial=serial, sections=sections)
