"""Crash-consistent persistence for the HighLight stack.

Three pieces (see docs/RECOVERY.md):

* **format** — the versioned, dual-slot, checksummed on-disk checkpoint
  format anchored from the superblock's ``persist_root`` field;
* **manager** — :class:`PersistManager`: capture (``checkpoint_mark``) /
  durable commit (``checkpoint_commit``) on every ``fs.checkpoint()``,
  and :meth:`~repro.persist.manager.PersistManager.recover` replay after
  a remount;
* **scrub** — :class:`SegmentCRCLedger` + :class:`Scrubber`, the
  background full-image checksum walk across all tiers;

plus **crashsim**, the process-death model (write traps, media imaging)
the crash-point test matrix and the ``--scenario crashes`` gate share.
"""

from __future__ import annotations

from repro.persist.format import (PERSIST_MAGIC, PERSIST_VERSION,
                                  SLOT_BASES, SLOT_BLOCKS,
                                  PersistFormatError, PersistImage,
                                  decode_slot, encode_slot, peek_serial)
from repro.persist.manager import (EV_CHECKPOINT_MARK, EV_CHECKPOINT_WRITE,
                                   EV_RECOVERY_REPLAY, PersistManager,
                                   RecoveryReport)
from repro.persist.scrub import (EV_SCRUB_MISMATCH, EV_SCRUB_PASS,
                                 Scrubber, SegmentCRCLedger, image_crc)

__all__ = [
    "PERSIST_MAGIC", "PERSIST_VERSION", "SLOT_BASES", "SLOT_BLOCKS",
    "PersistFormatError", "PersistImage", "decode_slot", "encode_slot",
    "peek_serial",
    "EV_CHECKPOINT_MARK", "EV_CHECKPOINT_WRITE", "EV_RECOVERY_REPLAY",
    "PersistManager", "RecoveryReport",
    "EV_SCRUB_MISMATCH", "EV_SCRUB_PASS", "Scrubber", "SegmentCRCLedger",
    "image_crc",
]
