"""Checkpoint capture, dual-slot commit, and recovery replay.

:class:`PersistManager` is wired over an assembled HighLight stack the
same way :class:`repro.faults.recovery.FaultManager` is: construct it
with the filesystem (plus whatever health registry / replica manager the
deployment already has) and :meth:`install` it.  From then on every
``fs.checkpoint()`` appends a persistence checkpoint right after the LFS
superblock write, and ``fs.recover()`` after a remount replays the
newest valid image and reconciles it with what roll-forward rebuilt.

The capture/commit split is deliberate and statically enforced (HL010):
:meth:`checkpoint_mark` is a pure capture — it reads system state into a
:class:`~repro.persist.format.PersistImage` and mutates nothing — and
:meth:`checkpoint_commit` makes that image durable.  Any state mutation
between the two would persist a system image that never existed.

Epoch semantics: a persistence image carries the serial of the LFS
checkpoint it was captured under.  Recovery trusts the LFS log for
filesystem state (superblock checkpoint + roll-forward to the last
complete partial segment — the *durable epoch*) and the persistence
image for everything the log does not record; an image older than the
mounted superblock checkpoint (crash between the two writes) is used
for its registries but its cache map is only advisory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro import obs
from repro.faults.health import HealthRegistry
from repro.lfs.constants import BLOCK_SIZE
from repro.persist.format import (SEC_CACHEMAP, SEC_COUNTERS, SEC_CRC_LEDGER,
                                  SEC_EPOCH, SEC_HEALTH, SEC_REPLICAS,
                                  SEC_SCHED, SLOT_BASES, SLOT_BLOCKS,
                                  PersistFormatError, PersistImage,
                                  decode_slot, encode_slot, peek_serial)
from repro.persist.scrub import Scrubber, SegmentCRCLedger
from repro.sched.scheduler import CLASS_WRITEOUT
from repro.sim.actor import Actor

EV_CHECKPOINT_MARK = obs.register_event_type("checkpoint_mark")
EV_CHECKPOINT_WRITE = obs.register_event_type("checkpoint_write")
EV_RECOVERY_REPLAY = obs.register_event_type("recovery_replay")

#: Counter families worth carrying across restarts: the cumulative
#: operational history of the archive, as opposed to per-run scratch.
PRESERVED_COUNTER_PREFIXES = (
    "footprint_", "ioserver_", "service_", "segcache_", "robot_",
    "repair_", "replica_", "degraded_", "scrub_", "checkpoint_",
    "volume_quarantined_",
)


@dataclass
class RecoveryReport:
    """What :meth:`PersistManager.recover` found and did."""

    found: bool = False
    serial: int = 0
    stale: bool = False
    requeued_writeouts: int = 0
    dropped_requests: int = 0
    indoubt_volumes: List[int] = field(default_factory=list)
    counters_restored: int = 0
    ledger_entries: int = 0
    replicas_restored: int = 0
    cachemap_divergence: int = 0
    notes: List[str] = field(default_factory=list)


class PersistManager:
    """Owns the persistence checkpoint area of one HighLight filesystem."""

    def __init__(self, fs, *, health: Optional[HealthRegistry] = None,
                 replicas=None) -> None:
        self.fs = fs
        base = fs.footprint
        while hasattr(base, "inner"):
            base = base.inner
        self._base_footprint = base
        if health is None:
            health = HealthRegistry(
                error_budget=getattr(fs.config, "fault_error_budget", 3))
            health.attach(base.jukebox)
        self.health = health
        self.replicas = replicas
        self.ledger = SegmentCRCLedger(fs.sb.blocks_per_seg, BLOCK_SIZE)
        self._writes = obs.counter(
            "checkpoint_writes_total", "persistence checkpoints written")
        self._payload_bytes = obs.gauge(
            "checkpoint_payload_bytes",
            "encoded size of the latest persistence checkpoint")
        self._invalid = obs.counter(
            "persist_slot_invalid_total",
            "persistence slots rejected by validation")

    def install(self) -> "PersistManager":
        """Hook into the filesystem: anchor the slot area and start
        folding Footprint writes into the CRC ledger."""
        self.fs.persist = self
        self.fs.sb.persist_root = SLOT_BASES[0]
        self._base_footprint.write_observer = self.ledger.observe_write
        return self

    def make_scrubber(self) -> Scrubber:
        cfg = self.fs.config
        return Scrubber(self.fs, self.ledger, self.health,
                        pacing=getattr(cfg, "scrub_pacing_seconds", 0.25),
                        include_cache=getattr(cfg, "scrub_include_cache",
                                              True))

    # -- capture (the checkpoint mark: pure, no state mutation) -------------

    def checkpoint_mark(self, actor: Actor) -> PersistImage:
        """Capture the live system image under the current LFS epoch."""
        fs = self.fs
        ckpt = fs.sb.latest_checkpoint()
        health_rows = [[vid,
                        self.health.health_of(vid).value,
                        self.health.errors.get(vid, 0),
                        self.health.quarantine_reasons.get(vid, "")]
                       for vid in sorted(self._base_footprint
                                         .jukebox.volumes)]
        catalog = []
        if self.replicas is not None:
            catalog = [[tsegno, sorted(map(list, places))]
                       for tsegno, places
                       in sorted(self.replicas.catalog.items())]
        sections = {
            SEC_EPOCH: {"serial": ckpt.serial,
                        "timestamp": ckpt.timestamp,
                        "log_daddr": ckpt.log_daddr},
            SEC_CACHEMAP: [[tsegno, disk_segno, int(staging)]
                           for tsegno, disk_segno, staging
                           in fs.cache.entries()],
            SEC_HEALTH: health_rows,
            SEC_SCHED: fs.sched.queued_descriptors(),
            SEC_COUNTERS: obs.metrics().counter_samples(
                PRESERVED_COUNTER_PREFIXES),
            SEC_REPLICAS: catalog,
            SEC_CRC_LEDGER: self.ledger.entries(),
        }
        obs.event(EV_CHECKPOINT_MARK, actor.time, serial=ckpt.serial)
        return PersistImage(serial=ckpt.serial, sections=sections)

    # -- commit (durable write) ---------------------------------------------

    def _target_slot(self, actor: Actor) -> int:
        """Index of the slot to overwrite: blank/corrupt first, else the
        one holding the older serial (alternating-slot discipline)."""
        serials = []
        for base in SLOT_BASES:
            raw = self.fs.dev_read(actor, base, 1)
            serials.append(peek_serial(raw))
        for idx, serial in enumerate(serials):
            if serial is None:
                return idx
        return 0 if serials[0] <= serials[1] else 1

    def checkpoint_commit(self, actor: Actor, image: PersistImage) -> None:
        """Write ``image`` into the older slot, under device accounting."""
        raw = encode_slot(image)
        slot = self._target_slot(actor)
        self.fs.dev_write(actor, SLOT_BASES[slot], raw)
        self._writes.inc()
        self._payload_bytes.set(float(len(raw.rstrip(b"\0"))))
        obs.event(EV_CHECKPOINT_WRITE, actor.time, serial=image.serial,
                  slot=slot)

    def on_checkpoint(self, actor: Actor) -> None:
        """Append a persistence checkpoint (called by ``fs.checkpoint``)."""
        image = self.checkpoint_mark(actor)
        self.checkpoint_commit(actor, image)

    # -- recovery -----------------------------------------------------------

    def load_newest(self, actor: Actor) -> Optional[PersistImage]:
        """The valid slot image with the highest serial, if any."""
        best: Optional[PersistImage] = None
        for base in SLOT_BASES:
            raw = self.fs.dev_read(actor, base, SLOT_BLOCKS)
            try:
                image = decode_slot(raw)
            except PersistFormatError:
                self._invalid.inc()
                continue
            if image is not None and (best is None
                                      or image.serial > best.serial):
                best = image
        return best

    def recover(self, actor: Optional[Actor] = None) -> RecoveryReport:
        """Replay the newest valid image and reconcile with the log.

        Runs after :meth:`~repro.core.highlight.HighLightFS
        .mount_highlight` (which already rolled the LFS forward to the
        last durable epoch and rebuilt the cache directory from the
        ifile).  Restores the registries the log does not record, marks
        volumes with in-flight write-outs at crash time DEGRADED
        (in-doubt until scrub or repair clears them), and re-submits
        write-outs for surviving staging lines — those lines hold the
        only durable copy of acknowledged data.
        """
        fs = self.fs
        actor = actor or fs.actor
        report = RecoveryReport()
        obs.counter("recovery_runs_total", "recovery replays started").inc()
        image = self.load_newest(actor)
        sched_rows: List[list] = []
        if image is not None:
            report.found = True
            report.serial = image.serial
            sb_serial = fs.sb.latest_checkpoint().serial
            report.stale = image.serial < sb_serial
            if report.stale:
                report.notes.append(
                    f"persistence epoch {image.serial} predates superblock "
                    f"epoch {sb_serial}; registries restored, cache map "
                    f"advisory only")
            sections = image.sections
            report.counters_restored = self._restore_counters(
                sections.get(SEC_COUNTERS, []))
            self._restore_health(sections.get(SEC_HEALTH, []))
            report.replicas_restored = self._restore_replicas(
                sections.get(SEC_REPLICAS, []))
            ledger_rows = sections.get(SEC_CRC_LEDGER, [])
            self.ledger.load(ledger_rows)
            report.ledger_entries = len(ledger_rows)
            sched_rows = sections.get(SEC_SCHED, [])
            if not report.stale:
                report.cachemap_divergence = self._check_cachemap(
                    sections.get(SEC_CACHEMAP, []), report)

        self._resync_full_volumes()
        staging = self._reconcile_staging(actor, report, sched_rows)
        obs.counter("recovery_requeued_writeouts_total",
                    "staging-line write-outs re-submitted by recovery"
                    ).inc(report.requeued_writeouts)
        obs.counter("recovery_dropped_requests_total",
                    "persisted scheduler requests dropped by recovery"
                    ).inc(report.dropped_requests)
        obs.event(EV_RECOVERY_REPLAY, actor.time, serial=report.serial,
                  found=report.found, stale=report.stale,
                  requeued=report.requeued_writeouts,
                  dropped=report.dropped_requests,
                  indoubt=len(report.indoubt_volumes),
                  staging_lines=len(staging))
        return report

    # -- recovery internals -------------------------------------------------

    def _restore_counters(self, rows: List[list]) -> int:
        reg = obs.metrics()
        restored = 0
        for name, labelnames, labelvalues, value in rows:
            reg.restore_counter_sample(name, labelnames, labelvalues, value)
            restored += 1
        return restored

    def _restore_health(self, rows: List[list]) -> None:
        """Reinstate persisted health states without re-emitting the
        original quarantine events (history, not new transitions)."""
        from repro.faults.health import VolumeHealth
        jukebox = self._base_footprint.jukebox
        for vid, state, errors, reason in rows:
            vol = jukebox.volumes.get(vid)
            if vol is None:
                continue
            vol.health = VolumeHealth(state)
            if errors:
                self.health.errors[vid] = errors
            if reason:
                self.health.quarantine_reasons[vid] = reason

    def _restore_replicas(self, rows: List[list]) -> int:
        if self.replicas is None or not rows:
            return 0
        for tsegno, places in rows:
            self.replicas.catalog[tsegno] = [tuple(p) for p in places]
        return len(rows)

    def _check_cachemap(self, rows: List[list],
                        report: RecoveryReport) -> int:
        """Cross-check the persisted cache map against the directory the
        mount rebuilt from the ifile (the ifile is authoritative)."""
        persisted = {(t, d) for t, d, _staging in rows}
        rebuilt = {(t, d) for t, d, _s in self.fs.cache.entries()}
        divergence = len(persisted ^ rebuilt)
        if divergence:
            report.notes.append(
                f"cache map divergence: {divergence} line(s) differ from "
                f"the ifile rebuild")
            obs.counter("recovery_cachemap_divergence_total",
                        "cache-map entries differing between the "
                        "persisted image and the ifile rebuild"
                        ).inc(divergence)
        return divergence

    def _resync_full_volumes(self) -> None:
        """The tsegfile's full flags are on-media truth; push them back
        onto the (freshly rebuilt, all-empty) volume objects."""
        for meta in self.fs.tsegfile.volumes:
            if meta.marked_full:
                self._base_footprint.mark_full(meta.volume_id)

    def _reconcile_staging(self, actor: Actor, report: RecoveryReport,
                           sched_rows: List[list]) -> List[int]:
        """Staging lines hold the sole copy of acknowledged data: their
        target volumes are in-doubt (DEGRADED) and their write-outs are
        re-submitted.  Persisted queue entries that no longer correspond
        to a staging line — prefetches, cleaner reads, already-flushed
        write-outs — are dropped and counted."""
        fs = self.fs
        staging = sorted(t for t, _d, s in fs.cache.entries() if s)
        for tsegno in staging:
            vid = fs.sched.volume_id(tsegno)
            if vid is not None and vid not in report.indoubt_volumes \
                    and self.health.health_of(vid).serving:
                report.indoubt_volumes.append(vid)
                self.health.record_error(vid, actor.time, kind="in_doubt")
                obs.counter("recovery_indoubt_volumes_total",
                            "volumes marked in-doubt by recovery").inc()
        for row in sched_rows:
            rclass, tag = row[0], row[1]
            if rclass != CLASS_WRITEOUT or tag not in staging:
                report.dropped_requests += 1
        # Requeue every surviving staging line, persisted descriptor or
        # not — the ifile outlives the persistence image.
        for tsegno in staging:
            fs.sched.submit_writeout(actor, tsegno)
            report.requeued_writeouts += 1
        return staging
