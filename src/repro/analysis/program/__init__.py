"""Whole-program analysis: symbol index, call graph, and dataflow.

The per-file rules (HL001-HL010) judge one AST at a time; the invariants
added in this layer — borrow lifetimes, cross-actor state discipline,
transitive clock purity — are properties of *paths through the call
graph*, so they need a view of the whole source tree at once.

Three pieces:

* :mod:`repro.analysis.program.summary` — extracts one
  :class:`ModuleSummary` per file: the defined functions and classes,
  an import-resolved candidate target list per call site, inferred
  attribute/local types, wall-clock source calls, and per-function
  borrow taint facts.  A summary is a pure, JSON-serializable function
  of the file's text, which is what makes the on-disk index cache
  (keyed on content hashes) sound.
* :mod:`repro.analysis.program.index` — combines summaries into a
  :class:`ProgramIndex`: the project-wide function table, the resolved
  call graph, the transitive-call closure helpers, and the fixpoint
  facts rules consume (which functions return borrows, which reach a
  real-time source).
* :mod:`repro.analysis.program.dataflow` — the small in-function
  dataflow framework: reaching name bindings and borrow-taint/escape
  analysis over a function body.

Rules opt in by setting ``uses_program = True`` and implementing
``prepare_program(index)``; the :class:`~repro.analysis.core.Analyzer`
builds one shared index per run and hands it to every such rule.
"""

from repro.analysis.program.index import IndexStats, ProgramIndex
from repro.analysis.program.summary import (FunctionSummary, ModuleSummary,
                                            summarize)

__all__ = [
    "FunctionSummary",
    "IndexStats",
    "ModuleSummary",
    "ProgramIndex",
    "summarize",
]
