"""The combined program index: function table, call graph, fixpoints.

:meth:`ProgramIndex.build` turns the per-file
:class:`~repro.analysis.program.summary.ModuleSummary` set into the
whole-program facts rules consume:

* the **function table** (qname -> summary) and **call graph** (resolved
  project-internal edges; a candidate target that matches no known
  function is external and carries no edge);
* the **borrow fixpoint** — which functions return borrowed extent
  ranges, seeded by direct ``read_refs``/``readv`` returns and iterated
  through ``returns_borrow_if`` conditional deps until stable;
* the **clock fixpoint** — which functions transitively reach a
  real-time source, with a witness path for diagnostics (HL013).

Summaries are pure per-file facts, so the index persists them in a JSON
cache keyed on each file's content hash: an incremental run only
re-summarizes changed modules (the CI analysis job caches this file
across runs and logs the reuse ratio and build time).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analysis.core import SourceFile
from repro.analysis.program.summary import (ACTOR_CLASS, FunctionSummary,
                                            ModuleSummary, summarize)

__all__ = ["IndexStats", "ProgramIndex"]

_CACHE_VERSION = 2


@dataclass
class IndexStats:
    """Build accounting, logged by the CLI (never part of result JSON —
    timing would break byte-identical determinism)."""

    files_total: int = 0
    files_reused: int = 0
    functions: int = 0
    build_seconds: float = 0.0

    def format(self) -> str:
        return (f"program index: {self.functions} functions from "
                f"{self.files_total} module(s), {self.files_reused} "
                f"summarized from cache, built in "
                f"{self.build_seconds * 1000.0:.1f} ms")


class ProgramIndex:
    """Project-wide symbol index + call graph + dataflow fixpoints."""

    def __init__(self, modules: Dict[str, ModuleSummary],
                 stats: Optional[IndexStats] = None) -> None:
        self.modules = modules
        self.stats = stats or IndexStats()
        #: qname -> FunctionSummary, across all modules.
        self.functions: Dict[str, FunctionSummary] = {}
        #: class qname -> {attr -> constructed class dotted name}.
        self.attr_types: Dict[str, Dict[str, str]] = {}
        self.class_bases: Dict[str, List[str]] = {}
        for mod in modules.values():
            self.functions.update(mod.functions)
            self.attr_types.update(mod.attr_types)
            self.class_bases.update(mod.class_bases)
        self.stats.functions = len(self.functions)
        #: Resolved project-internal call edges.
        self.edges: Dict[str, Set[str]] = {
            q: {t for t in f.calls if t in self.functions}
            for q, f in self.functions.items()}
        self.returns_borrow: Set[str] = self._borrow_fixpoint()
        #: qname -> (next hop qname or None, real-time source descriptor).
        self.clock_reach: Dict[str, Tuple[Optional[str], str]] = \
            self._clock_fixpoint()

    # -- fixpoints ----------------------------------------------------------

    def _borrow_fixpoint(self) -> Set[str]:
        known: Set[str] = {q for q, f in self.functions.items()
                           if f.returns_borrow_direct}
        changed = True
        while changed:
            changed = False
            for q, f in self.functions.items():
                if q in known:
                    continue
                if any(dep in known for dep in f.returns_borrow_if):
                    known.add(q)
                    changed = True
        return known

    def _clock_fixpoint(self) -> Dict[str, Tuple[Optional[str], str]]:
        reach: Dict[str, Tuple[Optional[str], str]] = {}
        for q, f in sorted(self.functions.items()):
            if f.clock_calls:
                reach[q] = (None, sorted(f.clock_calls)[0])
        # Reverse-BFS: callers of reaching functions reach too.  Sorted
        # worklists keep the chosen witness deterministic.
        callers: Dict[str, Set[str]] = {}
        for q, targets in self.edges.items():
            for t in targets:
                callers.setdefault(t, set()).add(q)
        frontier = sorted(reach)
        while frontier:
            nxt: List[str] = []
            for target in frontier:
                descriptor = reach[target][1]
                for caller in sorted(callers.get(target, ())):
                    if caller not in reach:
                        reach[caller] = (target, descriptor)
                        nxt.append(caller)
            frontier = sorted(nxt)
        return reach

    # -- queries ------------------------------------------------------------

    def is_borrow_call(self, candidates: Sequence[str]) -> bool:
        """Does any candidate target resolve to a borrow-returning
        project function?"""
        return any(c in self.returns_borrow for c in candidates)

    def clock_witness(self, qname: str) -> Optional[List[str]]:
        """The call path from ``qname`` to its real-time source, e.g.
        ``["repro.core.x.f", "repro.core.x.g", "time.time"]``; None when
        the function never reaches one."""
        if qname not in self.clock_reach:
            return None
        path = [qname]
        seen = {qname}
        cursor = qname
        while True:
            via, descriptor = self.clock_reach[cursor]
            if via is None or via in seen:
                path.append(descriptor)
                return path
            path.append(via)
            seen.add(via)
            cursor = via

    def actor_attrs(self, class_qname: str) -> Set[str]:
        """Attributes of ``class_qname`` holding ``Actor`` instances."""
        return {attr for attr, typ
                in self.attr_types.get(class_qname, {}).items()
                if typ == ACTOR_CLASS}

    def transitive_callees(self, qname: str) -> Set[str]:
        """The call closure of one function (project-internal edges)."""
        out: Set[str] = set()
        frontier = [qname]
        while frontier:
            cursor = frontier.pop()
            for target in self.edges.get(cursor, ()):
                if target not in out:
                    out.add(target)
                    frontier.append(target)
        return out

    # -- construction -------------------------------------------------------

    @classmethod
    def build(cls, files: Sequence[SourceFile],
              cache_path: Optional[Path] = None) -> "ProgramIndex":
        """Summarize every file (reusing hash-matched cache entries) and
        combine.  The cache file is rewritten after each build."""
        import time

        # Host-side build timing for the CI log; this is tooling that
        # never runs inside the simulation, hence the explicit noqa.
        t0 = time.perf_counter()  # noqa: HL001
        cached: Dict[str, Dict[str, object]] = {}
        if cache_path is not None and Path(cache_path).is_file():
            try:
                raw = json.loads(Path(cache_path).read_text(
                    encoding="utf-8"))
                if raw.get("version") == _CACHE_VERSION:
                    cached = raw.get("files", {})
            except (ValueError, OSError):
                cached = {}
        stats = IndexStats(files_total=len(files))
        modules: Dict[str, ModuleSummary] = {}
        out_files: Dict[str, Dict[str, object]] = {}
        for sf in files:
            digest = hashlib.sha256(sf.text.encode("utf-8")).hexdigest()
            entry = cached.get(sf.display_path)
            if entry is not None and entry.get("sha256") == digest:
                summary = ModuleSummary.from_dict(entry["summary"])
                stats.files_reused += 1
            else:
                summary = summarize(sf)
            modules[summary.module] = summary
            out_files[sf.display_path] = {"sha256": digest,
                                          "summary": summary.to_dict()}
        if cache_path is not None:
            try:
                Path(cache_path).parent.mkdir(parents=True, exist_ok=True)
                Path(cache_path).write_text(
                    json.dumps({"version": _CACHE_VERSION,
                                "files": out_files},
                               sort_keys=True),
                    encoding="utf-8")
            except OSError:
                pass  # caching is best-effort, never fatal
        stats.build_seconds = time.perf_counter() - t0  # noqa: HL001
        return cls(modules, stats)
