"""In-function dataflow: name bindings and borrow taint/escape analysis.

This is deliberately a *small* framework: flow-insensitive over two
passes (so loop-carried taint converges) with no path conditions.  That
is the right precision for the HL rules — they flag structural shapes
(a borrow stored on ``self``, a view mutated, a borrow returned), not
value-dependent behavior — and it keeps a whole-tree run well under the
CI time budget.

Taint model (consumed by HL011 and by the summary extractor):

* a **borrow** is the result of a store/device ``read_refs``/``readv``
  call, of a project function known (via the index fixpoint) to return
  borrows, or of a pass-through helper (``block_views``/``split_refs``)
  applied to a borrow;
* a **view** is a mutable window on a borrow: ``ref.buf``, the result of
  ``ref.view()``, or an element of a view container;
* containers become tainted when a borrow is ``append``/``extend``/
  ``insert``-ed into them, and subscripting a tainted value stays
  tainted.

Escapes — the shapes HL011 reports:

* ``self``: a borrow assigned to ``self.<attr>``;
* ``global``: a borrow assigned to a module-level / ``global`` name;
* ``container``: a borrow pushed into a container reached from ``self``
  or module scope (``self.cache.append(refs)``, ``CACHE[k] = refs``);
* ``mutation``: an assignment into a subscript of a borrow view
  (``ref.buf[0:4] = ...``, ``v = ref.view(); v[i] = ...``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Set

__all__ = [
    "BorrowAnalysis",
    "Escape",
    "analyze_borrows",
    "name_bindings",
    "BORROW_SOURCE_METHODS",
    "PASSTHROUGH_HELPERS",
]

#: Method names whose call yields borrowed ranges from a store/device.
BORROW_SOURCE_METHODS = frozenset({"read_refs", "readv"})

#: Helpers that return views/refs over their (possibly borrowed) input.
PASSTHROUGH_HELPERS = frozenset({"block_views", "split_refs"})

#: Container methods that capture a reference to their argument.
_CAPTURING_METHODS = frozenset({"append", "extend", "insert", "add",
                                "appendleft", "setdefault", "update"})

_REF = "ref"
_VIEW = "view"


def name_bindings(node: ast.AST) -> Dict[str, List[ast.AST]]:
    """Every name -> the list of value expressions bound to it (reaching
    definitions without kill: all bindings anywhere in ``node``)."""
    out: Dict[str, List[ast.AST]] = {}
    for sub in ast.walk(node):
        if isinstance(sub, ast.Assign):
            for target in sub.targets:
                for name in _target_names(target):
                    out.setdefault(name, []).append(sub.value)
        elif isinstance(sub, ast.AnnAssign) and sub.value is not None:
            if isinstance(sub.target, ast.Name):
                out.setdefault(sub.target.id, []).append(sub.value)
        elif isinstance(sub, ast.AugAssign):
            if isinstance(sub.target, ast.Name):
                out.setdefault(sub.target.id, []).append(sub.value)
        elif isinstance(sub, (ast.For, ast.AsyncFor)):
            for name in _target_names(sub.target):
                out.setdefault(name, []).append(sub.iter)
    return out


def _target_names(target: ast.AST) -> List[str]:
    return [n.id for n in ast.walk(target) if isinstance(n, ast.Name)
            and isinstance(n.ctx, ast.Store)]


def _terminal(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _is_self_chain(node: ast.AST) -> bool:
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    return isinstance(node, ast.Name) and node.id == "self"


@dataclass(frozen=True)
class Escape:
    """One borrow escape site."""

    node: ast.AST
    kind: str      # "self" | "global" | "container" | "mutation"
    detail: str


@dataclass
class BorrowAnalysis:
    """Result of :func:`analyze_borrows` over one function body."""

    returns_borrow_direct: bool = False
    returns_borrow_if: Set[str] = field(default_factory=set)
    escapes: List[Escape] = field(default_factory=list)


class _BorrowEngine:
    def __init__(self, fn: ast.AST,
                 call_resolver: Callable[[ast.Call], Sequence[str]],
                 is_borrow_call: Optional[Callable[[Sequence[str]], bool]],
                 module_scope: bool) -> None:
        self.fn = fn
        self.call_resolver = call_resolver
        self.is_borrow_call = is_borrow_call
        self.module_scope = module_scope
        self.taint: Dict[str, str] = {}        # name -> _REF | _VIEW
        self.result = BorrowAnalysis()
        self.locals: Set[str] = set(name_bindings(fn))
        self.globals_decl: Set[str] = set()
        for node in ast.walk(fn):
            if isinstance(node, ast.Global):
                self.globals_decl.update(node.names)
        if not module_scope:
            args = getattr(fn, "args", None)
            if args is not None:
                for arg in (list(args.posonlyargs) + list(args.args)
                            + list(args.kwonlyargs)):
                    self.locals.add(arg.arg)
                if args.vararg:
                    self.locals.add(args.vararg.arg)
                if args.kwarg:
                    self.locals.add(args.kwarg.arg)

    # -- expression taint ---------------------------------------------------

    def kind_of(self, node: ast.AST) -> Optional[str]:
        """The taint kind an expression evaluates to, or None."""
        if isinstance(node, ast.Name):
            return self.taint.get(node.id)
        if isinstance(node, ast.Subscript):
            return self.kind_of(node.value)
        if isinstance(node, ast.Starred):
            return self.kind_of(node.value)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            kinds = [self.kind_of(e) for e in node.elts]
            if _VIEW in kinds:
                return _VIEW
            if _REF in kinds:
                return _REF
            return None
        if isinstance(node, ast.IfExp):
            return self.kind_of(node.body) or self.kind_of(node.orelse)
        if isinstance(node, ast.Attribute):
            if node.attr == "buf" and self.kind_of(node.value) is not None:
                return _VIEW
            return None
        if isinstance(node, ast.Call):
            return self.call_kind(node)
        if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
            # [r.view() for r in refs] — taint flows through the iterable.
            for gen in node.generators:
                if self.kind_of(gen.iter) is not None:
                    elt_term = None
                    if isinstance(node.elt, ast.Call):
                        elt_term = _terminal(node.elt.func)
                    return _VIEW if elt_term == "view" else _REF
            return None
        return None

    def call_kind(self, call: ast.Call) -> Optional[str]:
        term = _terminal(call.func)
        if term == "view" and isinstance(call.func, ast.Attribute) \
                and self.kind_of(call.func.value) is not None:
            return _VIEW
        if term in BORROW_SOURCE_METHODS:
            return _REF
        if term in PASSTHROUGH_HELPERS:
            if any(self.kind_of(a) is not None for a in call.args):
                return _VIEW if term == "block_views" else _REF
            return None
        if self.is_borrow_call is not None:
            candidates = list(self.call_resolver(call))
            if candidates and self.is_borrow_call(candidates):
                return _REF
        return None

    # -- driving ------------------------------------------------------------

    def run(self) -> BorrowAnalysis:
        # Pass 1 twice: converge taint through loops; pass 3: report.
        for _ in range(2):
            for node in ast.walk(self.fn):
                self.propagate(node)
        for node in ast.walk(self.fn):
            self.report(node)
        return self.result

    def propagate(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            kind = self.kind_of(node.value)
            for target in node.targets:
                for name in _target_names(target):
                    if kind is not None:
                        self.taint[name] = kind
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            kind = self.kind_of(node.value)
            if kind is not None and isinstance(node.target, ast.Name):
                self.taint[node.target.id] = kind
        elif isinstance(node, ast.AugAssign):
            kind = self.kind_of(node.value)
            if kind is not None and isinstance(node.target, ast.Name):
                self.taint[node.target.id] = kind
        elif isinstance(node, (ast.For, ast.AsyncFor)):
            kind = self.kind_of(node.iter)
            if kind is not None:
                for name in _target_names(node.target):
                    self.taint[name] = kind
        elif isinstance(node, ast.Call):
            # container.append(borrow) taints a *local* container.
            term = _terminal(node.func)
            if (term in _CAPTURING_METHODS
                    and isinstance(node.func, ast.Attribute)
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id in self.locals):
                kinds = [self.kind_of(a) for a in node.args]
                kind = _VIEW if _VIEW in kinds else (
                    _REF if _REF in kinds else None)
                if kind is not None:
                    self.taint[node.func.value.id] = kind
        elif isinstance(node, ast.Return) and node.value is not None:
            if self.kind_of(node.value) is not None:
                self.result.returns_borrow_direct = True
            else:
                for call in self._return_calls(node.value):
                    self.result.returns_borrow_if.update(
                        self.call_resolver(call))

    def _return_calls(self, value: ast.AST) -> List[ast.Call]:
        """Calls whose borrow-ness would make this return a borrow:
        ``return f(...)`` directly, or ``return x`` where every binding
        of ``x`` is a single call."""
        if isinstance(value, ast.Call):
            return [value]
        if isinstance(value, ast.Name):
            bindings = name_bindings(self.fn).get(value.id, [])
            return [b for b in bindings if isinstance(b, ast.Call)]
        if isinstance(value, (ast.Tuple, ast.List)):
            out: List[ast.Call] = []
            for elt in value.elts:
                out.extend(self._return_calls(elt))
            return out
        return []

    # -- escape reporting ---------------------------------------------------

    def report(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign):
            kind = self.kind_of(node.value)
            for target in node.targets:
                self._report_store(target, kind, node)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            self._report_store(node.target, self.kind_of(node.value), node)
        elif isinstance(node, ast.AugAssign):
            self._report_store(node.target, self.kind_of(node.value), node,
                               augmented=True)
        elif isinstance(node, ast.Call):
            term = _terminal(node.func)
            if term in _CAPTURING_METHODS \
                    and isinstance(node.func, ast.Attribute):
                kinds = [self.kind_of(a) for a in node.args] + [
                    self.kind_of(kw.value) for kw in node.keywords]
                if not any(k is not None for k in kinds):
                    return
                base = node.func.value
                if _is_self_chain(base):
                    self.result.escapes.append(Escape(
                        node, "container",
                        f"borrowed range captured by "
                        f"'self...{node.func.attr}(...)'"))
                elif isinstance(base, ast.Name) \
                        and base.id not in self.locals:
                    self.result.escapes.append(Escape(
                        node, "container",
                        f"borrowed range captured by module-level "
                        f"'{base.id}.{node.func.attr}(...)'"))

    def _report_store(self, target: ast.AST, kind: Optional[str],
                      node: ast.AST, augmented: bool = False) -> None:
        # Mutation: writing *through* a borrow view.
        if isinstance(target, ast.Subscript):
            base_kind = self.kind_of(target.value)
            if base_kind == _VIEW or (
                    isinstance(target.value, ast.Attribute)
                    and target.value.attr == "buf"
                    and self.kind_of(target.value.value) is not None):
                self.result.escapes.append(Escape(
                    node, "mutation",
                    "write through a borrowed buffer view"))
                return
            # Store into a long-lived mapping/sequence.
            if kind is not None:
                if _is_self_chain(target.value):
                    self.result.escapes.append(Escape(
                        node, "container",
                        "borrowed range stored into a container on "
                        "'self'"))
                elif isinstance(target.value, ast.Name) \
                        and target.value.id not in self.locals:
                    self.result.escapes.append(Escape(
                        node, "container",
                        f"borrowed range stored into module-level "
                        f"'{target.value.id}'"))
            return
        if kind is None:
            return
        if isinstance(target, ast.Attribute) and _is_self_chain(target):
            self.result.escapes.append(Escape(
                node, "self",
                f"borrowed range stored on 'self.{target.attr}'"))
        elif isinstance(target, ast.Name):
            name = target.id
            if name in self.globals_decl or (
                    self.module_scope and not augmented):
                self.result.escapes.append(Escape(
                    node, "global",
                    f"borrowed range stored in module-level '{name}'"))


def analyze_borrows(
        fn: ast.AST,
        call_resolver: Callable[[ast.Call], Sequence[str]],
        is_borrow_call: Optional[Callable[[Sequence[str]], bool]] = None,
        module_scope: bool = False) -> BorrowAnalysis:
    """Run the borrow taint/escape analysis over one function body.

    ``call_resolver`` maps a call expression to candidate dotted targets
    (see :func:`repro.analysis.program.summary.call_candidates`).  With
    ``is_borrow_call`` unset (summary extraction), calls to project
    functions are *conditionally* tainted and recorded in
    ``returns_borrow_if``; with it set (HL011's check phase, backed by
    the index fixpoint), they resolve immediately and escapes are exact.
    """
    return _BorrowEngine(fn, call_resolver, is_borrow_call,
                         module_scope).run()
