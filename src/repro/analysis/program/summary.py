"""Per-module summaries: the cacheable unit of whole-program analysis.

A :class:`ModuleSummary` is a pure function of one file's text — no
other file is consulted — so the index cache can reuse it for any file
whose content hash is unchanged.  Cross-file questions ("is this call
target a project function?", "does this function transitively reach
``time.time()``?") are deliberately deferred to
:class:`~repro.analysis.program.index.ProgramIndex`, which owns the
combined view.

What gets extracted per function (methods are ``module.Class.name``;
nested defs and lambdas are collapsed into their enclosing function):

* ``calls`` — import-resolved *candidate* dotted targets for every call
  whose receiver we can type: plain names through the import map and
  module-level defs, ``self.m()`` through the enclosing class and its
  declared bases, ``self.attr.m()`` / ``local.m()`` through inferred
  attribute/local constructor types, and annotated parameters.
* ``clock_calls`` — calls that textually or after import resolution hit
  a real-time source (the HL001 catalogue, lifted so that aliased
  imports like ``from time import monotonic as tick`` are seen).
* borrow facts — whether the function's return value is (or may be) a
  borrowed extent range, and through which callees that depends.
* escapes/mutations of borrowed values, consumed by HL011.
* actor facts — parameters carrying the executing actor, expressions
  that denote *other* actors, consumed by HL012.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.core import SourceFile
from repro.analysis.program.dataflow import BorrowAnalysis, analyze_borrows
from repro.analysis.rules.util import dotted_chain

__all__ = [
    "ACTOR_CLASS",
    "BORROW_METHODS",
    "CLOCK_IMPORT_BANS",
    "CLOCK_SUFFIXES",
    "FunctionSummary",
    "ModuleResolver",
    "ModuleSummary",
    "actor_param_names",
    "import_map",
    "iter_functions",
    "summarize",
]

#: Wall-clock reads and real sleeps, matched as dotted-chain suffixes.
#: Kept in sync with HL001's catalogue (pinned by tests/test_program.py);
#: duplicated here so the program layer never imports the rule package
#: (rules import *us*, and a cycle would break cold imports).
CLOCK_SUFFIXES: Tuple[str, ...] = (
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.sleep",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "date.today",
)

#: Names that, imported from ``time``/``datetime``, are real-time sources.
CLOCK_IMPORT_BANS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
             "perf_counter_ns", "process_time", "process_time_ns", "sleep"},
    "datetime": {"datetime", "date"},
}

#: Method names whose call yields borrowed extent ranges from a store.
BORROW_METHODS = frozenset({"read_refs", "readv"})

#: The project actor class; attributes/locals constructed from it are
#: actor-typed for HL012.
ACTOR_CLASS = "repro.sim.actor.Actor"
_ACTOR_CTOR_NAMES = frozenset({"Actor"})


@dataclass
class FunctionSummary:
    """Facts about one function, serializable for the index cache."""

    qname: str
    line: int = 0
    #: Candidate dotted call targets (project-ness decided by the index).
    calls: List[str] = field(default_factory=list)
    #: Real-time source descriptors hit directly in the body.
    clock_calls: List[str] = field(default_factory=list)
    #: True when a return statement yields a direct borrow source.
    returns_borrow_direct: bool = False
    #: Call targets whose borrow-returning-ness propagates to our return.
    returns_borrow_if: List[str] = field(default_factory=list)
    #: Parameter names that carry the executing actor.
    actor_params: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, object]:
        return {
            "qname": self.qname,
            "line": self.line,
            "calls": sorted(set(self.calls)),
            "clock_calls": sorted(set(self.clock_calls)),
            "returns_borrow_direct": self.returns_borrow_direct,
            "returns_borrow_if": sorted(set(self.returns_borrow_if)),
            "actor_params": list(self.actor_params),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FunctionSummary":
        return cls(qname=data["qname"], line=data["line"],
                   calls=list(data["calls"]),
                   clock_calls=list(data["clock_calls"]),
                   returns_borrow_direct=data["returns_borrow_direct"],
                   returns_borrow_if=list(data["returns_borrow_if"]),
                   actor_params=list(data["actor_params"]))


@dataclass
class ModuleSummary:
    """Everything the index needs to know about one module."""

    module: str
    path: str
    functions: Dict[str, FunctionSummary] = field(default_factory=dict)
    #: class qname -> list of resolved base-class dotted names.
    class_bases: Dict[str, List[str]] = field(default_factory=dict)
    #: class qname -> {attr name -> constructor dotted name}.
    attr_types: Dict[str, Dict[str, str]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "module": self.module,
            "path": self.path,
            "functions": {q: f.to_dict()
                          for q, f in sorted(self.functions.items())},
            "class_bases": {c: list(b)
                            for c, b in sorted(self.class_bases.items())},
            "attr_types": {c: dict(sorted(a.items()))
                           for c, a in sorted(self.attr_types.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ModuleSummary":
        return cls(
            module=data["module"], path=data["path"],
            functions={q: FunctionSummary.from_dict(f)
                       for q, f in data["functions"].items()},
            class_bases={c: list(b)
                         for c, b in data["class_bases"].items()},
            attr_types={c: dict(a) for c, a in data["attr_types"].items()},
        )


# -- shared AST walks --------------------------------------------------------

def iter_functions(sf: SourceFile) -> Iterator[
        Tuple[str, ast.AST, Optional[str]]]:
    """Yield ``(qname, def_node, class_qname)`` for every top-level
    function and method of a module, in source order.  Nested defs are
    *not* yielded — their statements belong to the enclosing function.
    """
    for node in sf.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield f"{sf.module}.{node.name}", node, None
        elif isinstance(node, ast.ClassDef):
            class_qname = f"{sf.module}.{node.name}"
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield f"{class_qname}.{item.name}", item, class_qname


def import_map(sf: SourceFile) -> Dict[str, str]:
    """Local name -> dotted target, from the module's import statements."""
    mapping: Dict[str, str] = {}
    package = sf.module.rsplit(".", 1)[0] if "." in sf.module else ""
    for node in ast.walk(sf.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                target = alias.name if alias.asname else \
                    alias.name.split(".")[0]
                mapping[local] = target
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                # Relative import: resolve against the module's package.
                parts = sf.module.split(".")
                anchor = parts[:len(parts) - node.level]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                mapping[local] = f"{base}.{alias.name}" if base \
                    else alias.name
            _ = package
    return mapping


def _annotation_name(node: Optional[ast.AST]) -> Optional[str]:
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.strip("'\"").split("[")[0]
    chain = dotted_chain(node)
    return chain


def actor_param_names(fn: ast.AST, imports: Dict[str, str]) -> List[str]:
    """Parameters that carry the executing actor.

    The codebase convention is a parameter literally named ``actor``;
    an ``Actor``-annotated parameter of any name counts too.
    """
    out: List[str] = []
    args = fn.args
    every = (list(args.posonlyargs) + list(args.args)
             + list(args.kwonlyargs))
    for arg in every:
        ann = _annotation_name(arg.annotation)
        resolved = imports.get(ann, ann) if ann else None
        if arg.arg == "actor" or ann == "Actor" or resolved == ACTOR_CLASS:
            out.append(arg.arg)
    return out


class _TypeInference:
    """Constructor-based local/attribute typing for call resolution."""

    def __init__(self, sf: SourceFile, imports: Dict[str, str],
                 module_defs: Dict[str, str]) -> None:
        self.sf = sf
        self.imports = imports
        self.module_defs = module_defs  # local name -> qname in module

    def resolve_name(self, name: str) -> Optional[str]:
        """A module-visible name to a dotted target (project or not)."""
        if name in self.module_defs:
            return self.module_defs[name]
        if name in self.imports:
            return self.imports[name]
        return None

    def ctor_target(self, value: ast.AST) -> Optional[str]:
        """``Name(...)`` / ``mod.Name(...)`` to the constructed dotted
        class name, or None when the value is not a plain constructor
        call."""
        if not isinstance(value, ast.Call):
            return None
        chain = dotted_chain(value.func)
        if not chain or chain.startswith("."):
            return None
        head, _, rest = chain.partition(".")
        resolved = self.resolve_name(head)
        if resolved is None:
            return None
        return f"{resolved}.{rest}" if rest else resolved

    def class_attr_types(self, class_node: ast.ClassDef) -> Dict[str, str]:
        """``self.attr = Ctor(...)`` assignments anywhere in the class."""
        out: Dict[str, str] = {}
        for node in ast.walk(class_node):
            if not isinstance(node, ast.Assign):
                continue
            target_attr = None
            for target in node.targets:
                if (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    target_attr = target.attr
            if target_attr is None:
                continue
            ctor = self.ctor_target(node.value)
            if ctor is not None:
                out.setdefault(target_attr, ctor)
        return out

    def local_types(self, fn: ast.AST) -> Dict[str, str]:
        """Locals bound from constructor calls or typed annotations."""
        out: Dict[str, str] = {}
        for node in ast.walk(fn):
            if isinstance(node, ast.Assign):
                ctor = self.ctor_target(node.value)
                if ctor is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        out.setdefault(target.id, ctor)
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                ctor = self.ctor_target(node.value)
                if ctor is not None and isinstance(node.target, ast.Name):
                    out.setdefault(node.target.id, ctor)
        args = fn.args
        for arg in (list(args.posonlyargs) + list(args.args)
                    + list(args.kwonlyargs)):
            ann = _annotation_name(arg.annotation)
            if ann:
                resolved = self.resolve_name(ann.split(".")[0])
                if resolved is not None:
                    rest = ann.partition(".")[2]
                    out.setdefault(
                        arg.arg, f"{resolved}.{rest}" if rest else resolved)
        return out


def _clock_descriptor(chain: str, imports: Dict[str, str]) -> Optional[str]:
    """Return the matched real-time source for a call chain, if any."""
    if not chain:
        return None
    for suffix in CLOCK_SUFFIXES:
        if chain == suffix or chain.endswith("." + suffix):
            return suffix
    head, _, rest = chain.partition(".")
    resolved = imports.get(head)
    if resolved is not None:
        full = f"{resolved}.{rest}" if rest else resolved
        for suffix in CLOCK_SUFFIXES:
            if full == suffix or full.endswith("." + suffix):
                return suffix
        # ``from time import monotonic as tick`` -> tick() is time.monotonic.
        mod, _, name = resolved.rpartition(".")
        if not rest and mod in CLOCK_IMPORT_BANS \
                and name in CLOCK_IMPORT_BANS[mod]:
            return f"{mod}.{name}"
    return None


def call_candidates(call: ast.Call, *, imports: Dict[str, str],
                    module_defs: Dict[str, str],
                    class_qname: Optional[str],
                    class_bases: Dict[str, List[str]],
                    attr_types: Dict[str, str],
                    local_types: Dict[str, str]) -> List[str]:
    """Candidate dotted targets for one call expression."""
    func = call.func
    out: List[str] = []
    if isinstance(func, ast.Name):
        resolved = module_defs.get(func.id) or imports.get(func.id)
        if resolved:
            out.append(resolved)
        return out
    chain = dotted_chain(func)
    if not chain or chain.startswith("."):
        return out
    parts = chain.split(".")
    if parts[0] == "self" and class_qname is not None:
        if len(parts) == 2:
            out.append(f"{class_qname}.{parts[1]}")
            for base in class_bases.get(class_qname, []):
                out.append(f"{base}.{parts[1]}")
        elif len(parts) == 3 and parts[1] in attr_types:
            out.append(f"{attr_types[parts[1]]}.{parts[2]}")
        return out
    if len(parts) == 2 and parts[0] in local_types:
        out.append(f"{local_types[parts[0]]}.{parts[1]}")
        return out
    resolved = module_defs.get(parts[0]) or imports.get(parts[0])
    if resolved:
        out.append(".".join([resolved] + parts[1:]))
    return out


# -- the resolver ------------------------------------------------------------

class ModuleResolver:
    """One file's name-resolution context, shared by the summary
    extractor and the interprocedural rules' check phases."""

    def __init__(self, sf: SourceFile) -> None:
        self.sf = sf
        self.imports = import_map(sf)
        self.module_defs: Dict[str, str] = {}
        for node in sf.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                self.module_defs[node.name] = f"{sf.module}.{node.name}"
        self.infer = _TypeInference(sf, self.imports, self.module_defs)
        self.class_bases: Dict[str, List[str]] = {}
        self.attr_types: Dict[str, Dict[str, str]] = {}
        for node in sf.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            class_qname = f"{sf.module}.{node.name}"
            bases: List[str] = []
            for base in node.bases:
                chain = dotted_chain(base)
                if not chain:
                    continue
                head, _, rest = chain.partition(".")
                resolved = self.infer.resolve_name(head)
                if resolved:
                    bases.append(f"{resolved}.{rest}" if rest else resolved)
            self.class_bases[class_qname] = bases
            self.attr_types[class_qname] = self.infer.class_attr_types(node)

    def function_resolver(self, fn: ast.AST, class_qname: Optional[str]):
        """A ``call -> candidate targets`` closure for one function."""
        local_types = self.infer.local_types(fn) \
            if not isinstance(fn, ast.Module) else {}
        attr_types = self.attr_types.get(class_qname or "", {})

        def resolve(call: ast.Call) -> List[str]:
            return call_candidates(
                call, imports=self.imports, module_defs=self.module_defs,
                class_qname=class_qname, class_bases=self.class_bases,
                attr_types=attr_types, local_types=local_types)
        return resolve

    def local_actor_names(self, fn: ast.AST) -> List[str]:
        """Locals bound from ``Actor(...)`` — objects the function owns."""
        return [name for name, typ in self.infer.local_types(fn).items()
                if typ == ACTOR_CLASS]


# -- the extractor -----------------------------------------------------------

def summarize(sf: SourceFile) -> ModuleSummary:
    """Extract the :class:`ModuleSummary` of one parsed file."""
    resolver = ModuleResolver(sf)
    summary = ModuleSummary(module=sf.module, path=sf.display_path)
    summary.class_bases = resolver.class_bases
    summary.attr_types = resolver.attr_types

    for qname, fn, class_qname in iter_functions(sf):
        fn_resolver = resolver.function_resolver(fn, class_qname)
        fsum = FunctionSummary(qname=qname, line=fn.lineno)
        fsum.actor_params = actor_param_names(fn, resolver.imports)
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            chain = dotted_chain(node.func)
            clock = _clock_descriptor(chain or "", resolver.imports)
            if clock is not None:
                fsum.clock_calls.append(clock)
            fsum.calls.extend(fn_resolver(node))
        borrows: BorrowAnalysis = analyze_borrows(fn, fn_resolver)
        fsum.returns_borrow_direct = borrows.returns_borrow_direct
        fsum.returns_borrow_if = sorted(borrows.returns_borrow_if)
        summary.functions[qname] = fsum
    return summary
