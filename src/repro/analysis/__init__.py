"""Domain-specific static analysis for the HighLight reproduction.

The simulator's correctness rests on invariants the Python interpreter
cannot enforce for us:

* all simulated time flows through the virtual clock — a stray
  ``time.time()`` or unseeded ``random`` silently breaks golden-trace
  determinism (HL001);
* raw block-device I/O is confined to the device layer, the block-map
  driver, and the sanctioned line-I/O choke points, so every transfer is
  charged to the virtual clock in one auditable place (HL002);
* disk and tertiary block numbers live in one 32-bit space (paper §6.3,
  Fig. 4) and must only be converted through :class:`AddressSpace`
  helpers, never ad-hoc arithmetic (HL003);
* every trace event type is part of the registered taxonomy (HL004);
* metric label sets are bounded literals, matching the registry's
  cardinality cap (HL005);
* the filesystem core never swallows errors with blind ``except``
  clauses (HL006);

and, on top of the whole-program index in :mod:`repro.analysis.program`,
the interprocedural invariants: borrowed extent ranges must not escape
their lending call (HL011), one actor must not mutate another actor's
clock or account (HL012), and no simulation function's call closure may
reach a wall-clock source (HL013).  The runtime counterpart of HL011
lives in :mod:`repro.analysis.sanitize` (``REPRO_SANITIZE=borrow``).

``python -m repro.analysis src`` runs every rule over a source tree and
exits non-zero on findings; ``tests/test_analysis_clean.py`` runs the
same pass as a tier-1 test.  Findings can be suppressed per line with
``# noqa: HL0xx``.  See ``docs/ANALYSIS.md`` for the full rule catalogue.
"""

from repro.analysis.core import (AnalysisResult, Analyzer, Finding, Rule,
                                 SourceFile)
from repro.analysis.rules import ALL_RULES, default_rules

__all__ = [
    "AnalysisResult",
    "Analyzer",
    "Finding",
    "Rule",
    "SourceFile",
    "ALL_RULES",
    "default_rules",
    "run_paths",
]


def run_paths(paths, rules=None, jobs=1, index_cache=None) -> "AnalysisResult":
    """Analyze ``paths`` (files or directories) with ``rules``.

    This is the library/pytest entry point; the CLI in
    :mod:`repro.analysis.cli` is a thin wrapper around it.  ``jobs``
    parallelizes source loading (results are identical either way);
    ``index_cache`` persists program-index summaries between runs.
    """
    analyzer = Analyzer(rules if rules is not None else default_rules(),
                        index_cache=index_cache)
    return analyzer.run(paths, jobs=jobs)
