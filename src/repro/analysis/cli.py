"""Command-line driver: ``python -m repro.analysis [paths...]``.

Exit status is a pinned contract (tests/test_analysis.py::TestCLI):
0 clean, 1 findings (or unparseable files), 2 framework/usage error.

``--format`` selects text (default), ``json`` (the byte-deterministic
result dictionary), ``sarif`` (SARIF 2.1.0 for code-scanning upload),
or ``github`` (inline ``::error`` annotations for Actions runs).
``--jobs`` parallelizes source loading; ``--index-cache`` persists the
whole-program summary cache across runs (CI keys it on source hashes).
Program-index build accounting goes to stderr so every format's stdout
stays deterministic.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.core import AnalysisError, Analyzer, Rule
from repro.analysis.formats import to_github, to_sarif
from repro.analysis.rules import ALL_RULES, default_rules


def _select_rules(codes: Optional[str]) -> List[Rule]:
    rules = default_rules()
    if not codes:
        return rules
    wanted = {c.strip().upper() for c in codes.split(",") if c.strip()}
    known = {r.code for r in rules}
    unknown = wanted - known
    if unknown:
        raise AnalysisError(
            f"unknown rule code(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}")
    return [r for r in rules if r.code in wanted]


def _list_rules() -> str:
    lines = []
    for cls in ALL_RULES:
        lines.append(f"{cls.code}  {cls.name}")
        lines.append(f"       {cls.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="HighLight domain-specific static analysis "
                    "(invariants HL001-HL013; see docs/ANALYSIS.md)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--format",
                        choices=("text", "json", "sarif", "github"),
                        default="text", help="output format")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="parallel source-loading workers "
                             "(default: 1; output is identical either "
                             "way)")
    parser.add_argument("--index-cache", metavar="PATH", default=None,
                        help="JSON file persisting per-module program-"
                             "index summaries between runs")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if args.jobs < 1:
        print(f"error: --jobs must be >= 1, got {args.jobs}",
              file=sys.stderr)
        return 2

    try:
        rules = _select_rules(args.select)
        cache = Path(args.index_cache) if args.index_cache else None
        analyzer = Analyzer(rules, index_cache=cache)
        result = analyzer.run(args.paths, jobs=args.jobs)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if result.index_stats is not None:
        # Accounting goes to stderr: stdout must stay byte-identical
        # across runs for the determinism contract.
        print(result.index_stats.format(), file=sys.stderr)

    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    elif args.format == "sarif":
        print(json.dumps(to_sarif(result, rules), indent=2,
                         sort_keys=True))
    elif args.format == "github":
        for line in to_github(result):
            print(line)
        print(f"{len(result.findings)} finding(s) in "
              f"{result.files_analyzed} file(s)", file=sys.stderr)
    else:
        for finding in result.findings:
            print(finding.format())
        for err in result.errors:
            print(f"error: {err}")
        counts = result.counts_by_code()
        summary = ", ".join(f"{code}: {n}" for code, n in counts.items())
        print(f"{len(result.findings)} finding(s) in "
              f"{result.files_analyzed} file(s)"
              + (f" [{summary}]" if summary else "")
              + (f" ({len(result.suppressed)} suppressed)"
                 if result.suppressed else ""))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
