"""Command-line driver: ``python -m repro.analysis [paths...]``.

Exit status: 0 clean, 1 findings (or unparseable files), 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Sequence

from repro.analysis.core import AnalysisError, Analyzer, Rule
from repro.analysis.rules import ALL_RULES, default_rules


def _select_rules(codes: Optional[str]) -> List[Rule]:
    rules = default_rules()
    if not codes:
        return rules
    wanted = {c.strip().upper() for c in codes.split(",") if c.strip()}
    known = {r.code for r in rules}
    unknown = wanted - known
    if unknown:
        raise AnalysisError(
            f"unknown rule code(s): {', '.join(sorted(unknown))}; "
            f"known: {', '.join(sorted(known))}")
    return [r for r in rules if r.code in wanted]


def _list_rules() -> str:
    lines = []
    for cls in ALL_RULES:
        lines.append(f"{cls.code}  {cls.name}")
        lines.append(f"       {cls.rationale}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="HighLight domain-specific static analysis "
                    "(invariants HL001-HL007; see docs/ANALYSIS.md)")
    parser.add_argument("paths", nargs="*", default=["src"],
                        help="files or directories to analyze "
                             "(default: src)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="output format")
    parser.add_argument("--select", metavar="CODES",
                        help="comma-separated rule codes to run "
                             "(default: all)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule catalogue and exit")
    args = parser.parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0

    try:
        analyzer = Analyzer(_select_rules(args.select))
        result = analyzer.run(args.paths)
    except AnalysisError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.format == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
    else:
        for finding in result.findings:
            print(finding.format())
        for err in result.errors:
            print(f"error: {err}")
        counts = result.counts_by_code()
        summary = ", ".join(f"{code}: {n}" for code, n in counts.items())
        print(f"{len(result.findings)} finding(s) in "
              f"{result.files_analyzed} file(s)"
              + (f" [{summary}]" if summary else "")
              + (f" ({len(result.suppressed)} suppressed)"
                 if result.suppressed else ""))
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
