"""HL010: no state mutation between checkpoint mark and durable write.

A persistence checkpoint is a two-step protocol
(``repro.persist.PersistManager``): ``checkpoint_mark(...)`` captures
the system image as pure data, and ``checkpoint_commit(...)`` makes it
durable.  The image is only crash-consistent if nothing changes in
between — an attribute store, a dict/list update, or a delete executed
after the mark mutates the very state the image claims to describe, so
a crash after the slot write recovers to a world that never existed.

The rule works per function body: inside any function that calls both
``checkpoint_mark`` and ``checkpoint_commit``, every statement lexically
between the first mark call and the last commit call must be free of

* attribute/subscript assignment targets (``x.y = ...``, ``d[k] = ...``),
  including augmented and annotated assignment, and
* ``del`` statements on attributes or subscripts.

Plain local-name bindings (``image = ...``) are the protocol itself and
stay legal.  Code that genuinely needs to mutate between the two calls
belongs *before* the mark or *after* the commit.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.analysis.core import Finding, Rule, SourceFile

_MARK = "checkpoint_mark"
_COMMIT = "checkpoint_commit"


def _called_names(node: ast.AST) -> List[Tuple[str, int]]:
    """(name, lineno) of every function/method called under ``node``."""
    out: List[Tuple[str, int]] = []
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            func = sub.func
            if isinstance(func, ast.Attribute):
                out.append((func.attr, sub.lineno))
            elif isinstance(func, ast.Name):
                out.append((func.id, sub.lineno))
    return out


def _mutating_targets(stmt: ast.stmt) -> Optional[str]:
    """A description of the mutation if ``stmt`` mutates non-local
    state, else None."""
    if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
        targets = (stmt.targets if isinstance(stmt, ast.Assign)
                   else [stmt.target])
        for target in targets:
            if isinstance(target, ast.Attribute):
                return f"attribute store '{ast.unparse(target)} = ...'"
            if isinstance(target, ast.Subscript):
                return f"subscript store '{ast.unparse(target)} = ...'"
            if isinstance(target, (ast.Tuple, ast.List)):
                for elt in target.elts:
                    if isinstance(elt, (ast.Attribute, ast.Subscript)):
                        return (f"unpacking store into "
                                f"'{ast.unparse(elt)}'")
    if isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            if isinstance(target, (ast.Attribute, ast.Subscript)):
                return f"del of '{ast.unparse(target)}'"
    return None


class HL010CheckpointDiscipline(Rule):
    code = "HL010"
    name = "checkpoint-discipline"
    rationale = ("state mutated between a checkpoint mark and its "
                 "durable write makes the persisted image describe a "
                 "world that never existed; a crash then recovers to it")

    def check(self, sf: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(sf.tree):
            if not isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                continue
            names = _called_names(node)
            marks = [line for name, line in names if name == _MARK]
            commits = [line for name, line in names if name == _COMMIT]
            if not marks or not commits:
                continue
            lo, hi = min(marks), max(commits)
            if lo >= hi:
                continue
            for stmt in ast.walk(node):
                if not isinstance(stmt, ast.stmt):
                    continue
                if not lo < stmt.lineno <= hi:
                    continue
                what = _mutating_targets(stmt)
                if what is not None:
                    findings.append(self.finding(
                        sf, stmt,
                        f"{what} between checkpoint_mark (line {lo}) and "
                        f"checkpoint_commit (line {hi}); the captured "
                        "image no longer matches the state it describes"))
        return findings
