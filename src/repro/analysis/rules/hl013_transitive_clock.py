"""HL013: simulation code may not reach a wall-clock source *indirectly*.

HL001 flags the call site that touches ``time.time()``; this rule lifts
the same invariant through the call graph.  A simulation-layer function
whose transitive call closure reaches a real-time source is just as
nondeterministic as one that calls it directly — the wall clock has
merely been laundered through a helper, often in another module, where
HL001's per-file view cannot see it.

Only *indirect* reaches are reported (the direct call site is HL001's
finding; duplicating it would double-count every violation), and the
message carries the full witness path from the program index so the
laundering chain is actionable: ``f -> helper -> time.time``.

Scoped to the simulation layers (``repro.core``, ``repro.lfs``) where
golden-trace determinism is load-bearing; host-side tooling (bench
timing, the analyzer's own build clock) legitimately reads real time.
"""

from __future__ import annotations

from typing import List

from repro.analysis.core import Finding, Rule, SourceFile
from repro.analysis.program.summary import iter_functions


class HL013TransitiveClock(Rule):
    code = "HL013"
    name = "transitive-clock-purity"
    rationale = ("a simulation function whose call closure reaches a "
                 "wall-clock source is nondeterministic even when the "
                 "offending call lives in another module; HL001 lifted "
                 "through the call graph")
    scope = ("repro.core", "repro.lfs")
    uses_program = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.program = None

    def prepare_program(self, program) -> None:
        self.program = program

    def check(self, sf: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        if self.program is None:
            return findings
        for qname, fn, _ in iter_functions(sf):
            reach = self.program.clock_reach.get(qname)
            if reach is None:
                continue
            via, _descriptor = reach
            if via is None:
                continue  # direct call — HL001's finding, not ours
            witness = self.program.clock_witness(qname) or [qname]
            findings.append(self.finding(
                sf, fn,
                f"call closure reaches wall-clock source "
                f"'{witness[-1]}' via {' -> '.join(witness)}; route "
                f"simulated time through the virtual clock"))
        return findings
