"""HL014: cross-shard data I/O goes through the cluster router.

Cluster shards are shared-nothing: each :class:`ClusterNode` owns its
LFS, disk, jukebox, footprint, and I/O server outright, and the
:class:`~repro.cluster.router.ClusterRouter` is the single component
allowed to address a foreign shard's data (it owns the placement
catalog, charges the routing metrics, and joins the shard timelines
conservatively).  Code that reaches *through* a shard handle into the
shard's stack — ``node.fs.read_path(...)``, ``nodes[i].disk.write(...)``
— bypasses placement, routing accounting, and the virtual-time join:
the bytes move but the catalog, the ``cluster_route_*`` series, and the
fan-out timing model all silently lie afterwards.

Same name-heuristic choke-point pattern as HL002/HL007: the rule flags
*data-plane calls* reached through a ``<shard handle>.<stack attr>``
chain.  The sanctioned object surface (``node.write_object``,
``node.read_object``, ``node.migrate_object``...) and control-plane
introspection (``node.fs.stats``, ``node.fs.aspace.volume_of(...)``)
stay clean — shards are inspected freely, but their data moves only
through the router.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.analysis.core import Finding, Rule, SourceFile
from repro.analysis.rules.util import dotted_chain, terminal_attr, walk_calls

#: Attributes that denote a shard's private stack.
_STACK_ATTRS = frozenset({"fs", "disk", "store", "jukebox", "footprint",
                          "ioserver", "migrator", "service"})

#: Terminal receiver names that denote a shard handle.
_SHARD_NAMES = frozenset({"node", "shard", "victim", "peer", "src", "dst",
                          "src_node", "dst_node", "shard_node"})

#: Collections whose subscripts denote a shard handle (``nodes[i]``).
_SHARD_COLLECTIONS = frozenset({"nodes", "shards"})

#: The data-plane surface: calls that move or destroy shard-owned bytes.
_DATA_METHODS = frozenset({
    "read", "write", "read_refs", "write_refs", "writev",
    "read_path", "write_path", "unlink", "mkdir",
    "fetch", "writeout", "writeout_steps", "read_segment_image",
    "demand_fetch", "load", "eject",
    "migrate_file", "migrate_file_steps", "flush",
})

_DEFAULT_EXEMPT: Tuple[str, ...] = (
    "repro.cluster.router",
)


def _is_shard_handle(node: ast.AST) -> bool:
    """True when ``node`` denotes one shard: a handle-named name/attr
    (``node``, ``self.victim``) or a shard-collection subscript
    (``nodes[i]``, ``router.nodes[sid]``)."""
    if isinstance(node, ast.Subscript):
        return terminal_attr(node.value) in _SHARD_COLLECTIONS
    return terminal_attr(node) in _SHARD_NAMES


def _foreign_stack_link(receiver: ast.AST) -> Optional[str]:
    """Walk a call's receiver chain; if any link reads a stack attribute
    off a shard handle, return that link's dotted rendering."""
    cur = receiver
    while True:
        if isinstance(cur, ast.Attribute):
            if cur.attr in _STACK_ATTRS and _is_shard_handle(cur.value):
                return dotted_chain(cur) or f"<shard>.{cur.attr}"
            cur = cur.value
        elif isinstance(cur, ast.Subscript):
            cur = cur.value
        else:
            return None


class HL014ClusterLocality(Rule):
    code = "HL014"
    name = "cluster-shard-locality"
    rationale = ("data I/O issued directly against a foreign shard's "
                 "stack bypasses the router's placement catalog, routing "
                 "metrics, and conservative timeline join")
    exempt = _DEFAULT_EXEMPT

    def check(self, sf: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for call in walk_calls(sf.tree):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _DATA_METHODS:
                continue
            link = _foreign_stack_link(func.value)
            if link is not None:
                findings.append(self.finding(
                    sf, call,
                    f"foreign-shard data I/O '{link}.…{func.attr}(...)'; "
                    f"route through ClusterRouter (or the shard's object "
                    f"surface) instead"))
        return findings
