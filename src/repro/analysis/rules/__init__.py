"""The HL rule catalogue.

One module per rule; ``default_rules()`` instantiates the full suite
with its production scoping, which is what the CLI, CI, and the tier-1
cleanliness test all run.
"""

from typing import List

from repro.analysis.core import Rule
from repro.analysis.rules.hl001_clock_purity import HL001ClockPurity
from repro.analysis.rules.hl002_device_io import HL002DeviceIO
from repro.analysis.rules.hl003_address_domain import HL003AddressDomain
from repro.analysis.rules.hl004_trace_events import HL004TraceEvents
from repro.analysis.rules.hl005_metric_labels import HL005MetricLabels
from repro.analysis.rules.hl006_exceptions import HL006ExceptionDiscipline
from repro.analysis.rules.hl007_sched_submission import HL007SchedSubmission
from repro.analysis.rules.hl008_datapath_copy import HL008DatapathCopy
from repro.analysis.rules.hl009_retry_discipline import HL009RetryDiscipline
from repro.analysis.rules.hl010_checkpoint_discipline import (
    HL010CheckpointDiscipline)
from repro.analysis.rules.hl011_borrow_escape import HL011BorrowEscape
from repro.analysis.rules.hl012_actor_discipline import HL012ActorDiscipline
from repro.analysis.rules.hl013_transitive_clock import HL013TransitiveClock
from repro.analysis.rules.hl014_cluster_locality import HL014ClusterLocality
from repro.analysis.rules.hl015_frontend_discipline import (
    HL015FrontendDiscipline)

ALL_RULES = (
    HL001ClockPurity,
    HL002DeviceIO,
    HL003AddressDomain,
    HL004TraceEvents,
    HL005MetricLabels,
    HL006ExceptionDiscipline,
    HL007SchedSubmission,
    HL008DatapathCopy,
    HL009RetryDiscipline,
    HL010CheckpointDiscipline,
    HL011BorrowEscape,
    HL012ActorDiscipline,
    HL013TransitiveClock,
    HL014ClusterLocality,
    HL015FrontendDiscipline,
)

__all__ = ["ALL_RULES", "default_rules"] + [cls.__name__ for cls in ALL_RULES]


def default_rules() -> List[Rule]:
    """The full suite with each rule's default scoping."""
    return [cls() for cls in ALL_RULES]
