"""HL003: disk and tertiary block numbers never mix outside AddressSpace.

Paper §6.3 / Fig. 4: one 32-bit space of 4 KB blocks, disks at the
bottom, tertiary volumes assigned from the top downward, a dead zone in
between.  Every conversion between the two regions — segment number to
base address, tertiary segment to (volume, offset), boundary checks —
belongs in :class:`repro.core.addressing.AddressSpace`.  Ad-hoc
arithmetic that reconstructs the geometry elsewhere rots the moment the
layout changes (and historically is exactly how dead-zone accesses are
born).

Three patterns are flagged outside ``repro.core.addressing``:

1. address-space geometry arithmetic: any binary arithmetic involving
   ``1 << 32`` / ``2 ** 32`` / ``4294967296`` / ``0xFFFFFFFF`` /
   ``TOTAL_SEGS_32BIT``;
2. a single arithmetic expression mixing a disk-domain identifier with
   a tertiary-domain identifier;
3. an assignment whose target is disk-domain but whose right-hand side
   does arithmetic on tertiary-domain identifiers (or vice versa) —
   crossing the boundary without an ``AddressSpace`` helper.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Set, Tuple

from repro.analysis.core import Finding, Rule, SourceFile

_ARITH_OPS = (ast.Add, ast.Sub, ast.Mult, ast.FloorDiv, ast.Mod)

#: 2**32 in its usual spellings.  (``0xFFFFFFFF`` is deliberately absent:
#: it is overwhelmingly a checksum/sign mask, not address geometry.)
_SPACE_CONSTANTS = {4294967296}
_SPACE_NAMES = {"TOTAL_SEGS_32BIT"}

#: Geometry arithmetic is only flagged when it involves an address-ish
#: identifier — ``(1 << 32) // blocks_per_seg`` is geometry, a u32 sign
#: trick on a logical block number is not.
_ADDRESSY_RE = re.compile(r"daddr|seg|vol|addr", re.IGNORECASE)

#: ``daddr`` alone is *not* disk-domain: the codebase uses it for any
#: unified-space address (a staged block's daddr is tertiary).  Only
#: names that explicitly claim a side mark a domain.
_DISK_RE = re.compile(r"^(disk_\w+|\w*_disk_segno|line_base\w*)$")
_TERT_RE = re.compile(
    r"^(tseg\w*|\w*_tsegno|tertiary_\w+|vol_start\w*|seg_in_vol)$")


def _is_space_magnitude(node: ast.AST) -> bool:
    """``1 << 32``, ``2 ** 32``, ``4294967296``, ``0xFFFFFFFF``…"""
    if isinstance(node, ast.Constant) and node.value in _SPACE_CONSTANTS:
        return True
    if isinstance(node, ast.Name) and node.id in _SPACE_NAMES:
        return True
    if (isinstance(node, ast.Attribute) and node.attr in _SPACE_NAMES):
        return True
    if isinstance(node, ast.BinOp):
        left, right = node.left, node.right
        if (isinstance(node.op, ast.LShift)
                and isinstance(left, ast.Constant) and left.value == 1
                and isinstance(right, ast.Constant) and right.value == 32):
            return True
        if (isinstance(node.op, ast.Pow)
                and isinstance(left, ast.Constant) and left.value == 2
                and isinstance(right, ast.Constant) and right.value == 32):
            return True
    return False


def _identifiers(node: ast.AST) -> Set[str]:
    """All identifier leaves in an expression (names and attribute tails),
    excluding names that are only used as call targets."""
    out: Set[str] = set()
    skip: Set[int] = set()
    for sub in ast.walk(node):
        if isinstance(sub, ast.Call):
            skip.add(id(sub.func))
    for sub in ast.walk(node):
        if id(sub) in skip:
            continue
        if isinstance(sub, ast.Name):
            out.add(sub.id)
        elif isinstance(sub, ast.Attribute):
            out.add(sub.attr)
    return out


def _domains(names: Set[str]) -> Tuple[bool, bool]:
    disk = any(_DISK_RE.match(n) for n in names)
    tert = any(_TERT_RE.match(n) for n in names)
    return disk, tert


class HL003AddressDomain(Rule):
    code = "HL003"
    name = "address-domain-safety"
    rationale = ("crossing the disk/tertiary boundary with raw arithmetic "
                 "instead of AddressSpace helpers invites dead-zone and "
                 "misrouted-I/O bugs (paper §6.3, Fig. 4)")
    exempt = ("repro.core.addressing",)

    def check(self, sf: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, _ARITH_OPS):
                f = self._check_binop(sf, node)
                if f is not None:
                    findings.append(f)
            elif isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                f = self._check_assign(sf, node)
                if f is not None:
                    findings.append(f)
        return findings

    def _check_binop(self, sf: SourceFile,
                     node: ast.BinOp) -> Optional[Finding]:
        if _is_space_magnitude(node.left) or _is_space_magnitude(node.right):
            if any(_ADDRESSY_RE.search(n) for n in _identifiers(node)):
                return self.finding(
                    sf, node,
                    "hand-rolled 32-bit address-space geometry; use "
                    "AddressSpace (repro.core.addressing) instead")
            return None
        ldisk, ltert = _domains(_identifiers(node.left))
        rdisk, rtert = _domains(_identifiers(node.right))
        if (ldisk and rtert and not ltert) or (ltert and rdisk and not rtert):
            return self.finding(
                sf, node,
                "arithmetic mixes disk-domain and tertiary-domain "
                "addresses; convert through AddressSpace helpers "
                "(seg_base/segno_of/volume_of/tertiary_segno)")
        return None

    def _check_assign(self, sf: SourceFile, node: ast.AST) -> Optional[Finding]:
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AugAssign):
            targets, value = [node.target], node.value
        else:  # AnnAssign
            if node.value is None:
                return None
            targets, value = [node.target], node.value
        if not any(isinstance(sub, ast.BinOp)
                   and isinstance(sub.op, _ARITH_OPS)
                   for sub in ast.walk(value)):
            return None
        tnames: Set[str] = set()
        for target in targets:
            tnames |= _identifiers(target)
        tdisk, ttert = _domains(tnames)
        vdisk, vtert = _domains(_identifiers(value))
        if tdisk and vtert and not vdisk:
            return self.finding(
                sf, node,
                "disk-domain value computed from tertiary-domain "
                "operands; use AddressSpace.seg_base/segno_of instead "
                "of raw arithmetic")
        if ttert and vdisk and not vtert:
            return self.finding(
                sf, node,
                "tertiary-domain value computed from disk-domain "
                "operands; use AddressSpace.volume_of/tertiary_segno "
                "instead of raw arithmetic")
        return None
