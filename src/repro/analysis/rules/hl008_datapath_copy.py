"""HL008: segment data moves as extents, not per-block loops.

The zero-copy data path keeps segment images as extent runs end to end:
``read_refs``/``write_refs``/``readv``/``writev`` move whole images as
borrowed byte ranges, and the stores coalesce contiguous writes back
into single extents.  Two patterns silently reintroduce the per-block
copies that path removed:

* a ``for``-loop over ``range(...)`` whose body issues block I/O
  (``read``/``write``/``is_written``/``read_refs``/``write_refs``/
  ``readv``/``writev``) indexed by the loop variable against a store-
  or device-named receiver — the split-and-rejoin shape the vectored
  API replaces.  Loops whose calls ignore the loop variable (one whole
  image per replica, per volume, per retry) are not per-block and stay
  clean;

* reaching into a store's internals (``_blocks``, ``_extents``,
  ``_exts``, ``_starts``) outside ``repro.blockdev`` — code that walks
  the representation directly both copies per block and breaks when the
  store flips between the extent and block-dict layouts;

* a ``for`` loop that constructs one :class:`ExtentRef` per iteration
  while also issuing store/device block I/O — the run-based helpers
  (``run_views``, one batched ``write_refs``/``writev``) move the whole
  run with O(runs) refs, so a ref-per-iteration loop is the per-block
  shape wearing zero-copy clothes.  Building the whole batch in a
  comprehension and handing it to *one* vectored call is the sanctioned
  form and stays clean, as do ``while`` loops that hand over one
  accumulated region per pass (the staging spill shape).

``repro.blockdev`` itself is exempt: the stores and devices are where
the per-block representation legitimately lives.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Tuple

from repro.analysis.core import Finding, Rule, SourceFile
from repro.analysis.rules.util import terminal_attr, walk_calls

#: Receiver names that denote a block store or device.
_STORE_NAMES = frozenset({"store", "disk", "device", "dev", "drive",
                          "tape", "volume", "footprint", "jukebox"})

#: Per-block data-path methods that should not sit inside a range loop.
_BLOCK_IO_METHODS = frozenset({"read", "write", "is_written", "readv",
                               "writev", "read_refs", "write_refs"})

#: Store-internal attributes that only repro.blockdev may touch.
_PRIVATE_STORE_ATTRS = frozenset({"_blocks", "_extents", "_exts",
                                  "_starts"})

_DEFAULT_EXEMPT: Tuple[str, ...] = (
    "repro.blockdev",
)


def _is_range_call(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "range")


def _is_extentref_ctor(call: ast.Call) -> bool:
    func = call.func
    if isinstance(func, ast.Name):
        return func.id == "ExtentRef"
    return isinstance(func, ast.Attribute) and func.attr == "ExtentRef"


_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp,
                   ast.GeneratorExp)


def _per_iteration_calls(loop: ast.For):
    """Calls executed once per iteration of ``loop``'s body.

    Calls nested inside comprehensions are excluded: a comprehension
    builds a whole batch in one statement, which is exactly the
    sanctioned run-based shape.
    """
    todo: List[ast.AST] = list(loop.body) + list(loop.orelse)
    while todo:
        node = todo.pop()
        if isinstance(node, _COMPREHENSIONS):
            continue
        if isinstance(node, ast.Call):
            yield node
        todo.extend(ast.iter_child_nodes(node))


def _target_names(target: ast.AST) -> FrozenSet[str]:
    """Names bound by a loop target (``i``, or ``i, j`` tuples)."""
    return frozenset(n.id for n in ast.walk(target)
                     if isinstance(n, ast.Name))


def _uses_names(call: ast.Call, names: FrozenSet[str]) -> bool:
    """True when any argument of ``call`` mentions one of ``names``."""
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        for node in ast.walk(arg):
            if isinstance(node, ast.Name) and node.id in names:
                return True
    return False


class HL008DatapathCopy(Rule):
    code = "HL008"
    name = "datapath-copy-discipline"
    rationale = ("per-block loops over device data and direct store "
                 "internals reintroduce the split-and-rejoin copies the "
                 "extent data path removes")
    exempt = _DEFAULT_EXEMPT

    def check(self, sf: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.For):
                if _is_range_call(node.iter):
                    findings.extend(self._check_range_loop(sf, node))
                findings.extend(self._check_ref_loop(sf, node))
            elif isinstance(node, ast.Attribute):
                if node.attr in _PRIVATE_STORE_ATTRS:
                    receiver = terminal_attr(node.value)
                    if receiver in _STORE_NAMES:
                        findings.append(self.finding(
                            sf, node,
                            f"store internals "
                            f"'{receiver}.{node.attr}' accessed outside "
                            f"repro.blockdev; use the DataStore API "
                            f"(read_refs/write_refs/written_blocks)"))
        return findings

    def _check_range_loop(self, sf: SourceFile,
                          loop: ast.For) -> List[Finding]:
        findings: List[Finding] = []
        loop_vars = _target_names(loop.target)
        for call in walk_calls(loop):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _BLOCK_IO_METHODS:
                continue
            if not _uses_names(call, loop_vars):
                continue  # one whole transfer per iteration, not per-block
            receiver = terminal_attr(func.value)
            if receiver in _STORE_NAMES:
                findings.append(self.finding(
                    sf, call,
                    f"per-block loop calls "
                    f"'{receiver}.{func.attr}(...)' once per iteration; "
                    f"move the whole range with one vectored "
                    f"read_refs/write_refs/readv/writev call"))
        return findings

    def _check_ref_loop(self, sf: SourceFile,
                        loop: ast.For) -> List[Finding]:
        """Flag one-ExtentRef-per-iteration loops that also do block I/O."""
        ref_ctors = []
        does_block_io = False
        for call in _per_iteration_calls(loop):
            if _is_extentref_ctor(call):
                ref_ctors.append(call)
            elif isinstance(call.func, ast.Attribute) \
                    and call.func.attr in _BLOCK_IO_METHODS \
                    and terminal_attr(call.func.value) in _STORE_NAMES:
                does_block_io = True
        if not does_block_io:
            return []
        return [self.finding(
            sf, call,
            "loop constructs one ExtentRef per iteration next to "
            "store/device block I/O; build the whole run with "
            "run_views(...) or a comprehension and hand it to one "
            "vectored write_refs/writev call")
            for call in ref_ctors]
