"""HL007: tertiary I/O submissions go through the scheduler facade.

The tertiary request scheduler (``repro.sched``) is the single point
where demand fetches, prefetches, write-outs, and cleaner reads meet
the I/O server: it enforces class priority, mount batching, admission
control, and the Table 4 ``queuing`` accounting for every request.  A
direct ``ioserver.fetch(...)`` (or write-out / bulk-read) call anywhere
else bypasses all four — the request is never classed, never batched
with its volume, never admission-checked, and its queue wait is never
charged.

Same choke-point pattern as HL002: the rule matches submission-method
calls on a receiver whose terminal name denotes the I/O server.
Attribute *reads* (``ioserver.account``, ``ioserver.writeout_log``) are
untouched — only calls submit work.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from repro.analysis.core import Finding, Rule, SourceFile
from repro.analysis.rules.util import terminal_attr, walk_calls

#: Receiver names that denote the I/O server back-end.
_IOSERVER_NAMES = frozenset({"ioserver", "io_server"})

#: The I/O server's submission surface (work-creating calls only).
_SUBMIT_METHODS = frozenset({"fetch", "writeout", "writeout_steps",
                             "read_segment_image"})

_DEFAULT_EXEMPT: Tuple[str, ...] = (
    "repro.sched",
)


class HL007SchedSubmission(Rule):
    code = "HL007"
    name = "scheduler-submission-discipline"
    rationale = ("tertiary I/O issued around the request scheduler "
                 "escapes class priority, mount batching, admission "
                 "control, and queuing-time accounting")
    exempt = _DEFAULT_EXEMPT

    def check(self, sf: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for call in walk_calls(sf.tree):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _SUBMIT_METHODS:
                continue
            receiver = terminal_attr(func.value)
            if receiver in _IOSERVER_NAMES:
                findings.append(self.finding(
                    sf, call,
                    f"direct I/O-server submission "
                    f"'{receiver}.{func.attr}(...)'; submit through the "
                    f"repro.sched.TertiaryScheduler facade instead"))
        return findings
