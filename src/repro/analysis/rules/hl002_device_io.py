"""HL002: raw block-device I/O is confined to sanctioned choke points.

Paper §6.7: only the I/O server touches the on-disk cache "directly via
a character (raw) pseudo-device"; everything else goes through the
block-map driver so every transfer is charged to the virtual clock and
address-checked in one place.  In this codebase the sanctioned raw
paths are:

* ``repro.blockdev`` — the devices themselves;
* ``repro.core.addressing`` — the block-map driver plus the
  ``line_read``/``line_write`` helpers that core subsystems (I/O server,
  migrator, staging, cleaners, replicas) must use for cache-line I/O;
* ``repro.lfs.segwriter`` — the segment writer's log append path;
* ``repro.lfs.filesystem`` — the single ``dev_read``/``dev_write``
  choke point the block map plugs into;
* ``repro.ffs`` — the FFS comparison baseline, which has no block map
  by design;
* ``repro.footprint`` — the Footprint interface, the paper's sanctioned
  tertiary access layer;
* ``repro.lfs.dump`` — the offline log-inspection tool, which decodes
  raw (possibly crashed) images independent of any mounted filesystem.

Any other module calling ``<something>.disk.read(...)`` (or on another
device-named attribute) is bypassing the choke points.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from repro.analysis.core import Finding, Rule, SourceFile
from repro.analysis.rules.util import terminal_attr, walk_calls

#: Receiver names that denote a block device.
_DEVICE_NAMES = frozenset({"disk", "device", "dev", "tape", "drive"})

_DEFAULT_EXEMPT: Tuple[str, ...] = (
    "repro.blockdev",
    "repro.core.addressing",
    "repro.lfs.segwriter",
    "repro.lfs.filesystem",
    "repro.ffs",
    "repro.footprint",
    "repro.lfs.dump",
)


class HL002DeviceIO(Rule):
    code = "HL002"
    name = "device-io-discipline"
    rationale = ("raw device I/O outside the block map / line-I/O choke "
                 "points escapes virtual-clock charging and address "
                 "checking")
    exempt = _DEFAULT_EXEMPT

    def check(self, sf: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for call in walk_calls(sf.tree):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in ("read", "write"):
                continue
            receiver = terminal_attr(func.value)
            if receiver in _DEVICE_NAMES:
                findings.append(self.finding(
                    sf, call,
                    f"direct device I/O '{receiver}.{func.attr}(...)'; "
                    f"route through the block map or the line_read/"
                    f"line_write helpers in repro.core.addressing"))
        return findings
