"""Small AST helpers shared by the HL rules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional

__all__ = ["dotted_chain", "terminal_attr", "call_name", "walk_calls"]


def dotted_chain(node: ast.AST) -> Optional[str]:
    """Render an attribute/name chain as ``"a.b.c"``; None if not a chain.

    ``self.fs.disk.read`` -> ``"self.fs.disk.read"``.  Chains hanging off
    calls or subscripts (``x().y``, ``d[k].y``) are cut at the non-chain
    link and render only the trailing attributes.
    """
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("")  # anonymous head: x().attr, d[k].attr
    else:
        return None
    return ".".join(reversed(parts))


def terminal_attr(node: ast.AST) -> Optional[str]:
    """The last identifier of a name/attribute chain (``a.b.c`` -> ``c``)."""
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_name(call: ast.Call) -> Optional[str]:
    """The called name: ``f(...)`` -> ``f``, ``a.b.f(...)`` -> ``f``."""
    return terminal_attr(call.func)


def walk_calls(tree: ast.AST) -> Iterator[ast.Call]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Call):
            yield node
