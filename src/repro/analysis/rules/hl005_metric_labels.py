"""HL005: metric label sets are bounded literals.

The registry caps series cardinality per family
(:class:`repro.obs.registry.MetricFamily`, ``max_series``), but the cap
only fires after a hot path has already leaked an unbounded label set.
Statically, two things keep labels honest:

1. the ``labelnames`` of a ``counter``/``gauge``/``histogram`` family
   must be a literal tuple/list of string constants — a computed label
   *name* set defeats both the cardinality cap and grep;
2. ``.labels(...)`` calls must spell their labels as explicit keywords —
   ``**kwargs`` expansion hides which label names a call site can
   produce.

Label *values* may be dynamic (device names, op kinds); it is the label
name set that must be closed.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.core import Finding, Rule, SourceFile
from repro.analysis.rules.util import call_name, walk_calls

_FAMILY_FUNCS = frozenset({"counter", "gauge", "histogram"})

#: Position of ``labelnames`` in the family accessors' signatures
#: (``name, help, labelnames, …`` on both MetricsRegistry and repro.obs).
_LABELNAMES_POS = 2


class HL005MetricLabels(Rule):
    code = "HL005"
    name = "metrics-label-hygiene"
    rationale = ("a dynamic label-name set can blow the registry's series "
                 "cap at runtime; label names must be closed, literal "
                 "sets")
    exempt = ("repro.obs",)

    def check(self, sf: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for call in walk_calls(sf.tree):
            name = call_name(call)
            if name in _FAMILY_FUNCS:
                arg = self._labelnames_arg(call)
                if arg is not None and not self._is_literal_names(arg):
                    findings.append(self.finding(
                        sf, call,
                        f"labelnames of {name}(...) must be a literal "
                        f"tuple/list of string constants"))
            elif name == "labels":
                if call.args:
                    findings.append(self.finding(
                        sf, call,
                        ".labels(...) takes explicit keyword labels only"))
                elif any(kw.arg is None for kw in call.keywords):
                    findings.append(self.finding(
                        sf, call,
                        ".labels(**...) hides the label-name set; spell "
                        "each label as an explicit keyword"))
        return findings

    @staticmethod
    def _labelnames_arg(call: ast.Call) -> Optional[ast.AST]:
        for kw in call.keywords:
            if kw.arg == "labelnames":
                return kw.value
        if len(call.args) > _LABELNAMES_POS:
            return call.args[_LABELNAMES_POS]
        return None

    @staticmethod
    def _is_literal_names(node: ast.AST) -> bool:
        if not isinstance(node, (ast.Tuple, ast.List)):
            return False
        return all(isinstance(el, ast.Constant) and isinstance(el.value, str)
                   for el in node.elts)
