"""HL001: all simulated time flows through the virtual clock.

The golden-trace regression tests diff byte-identical JSON across runs;
one ``time.time()`` in a hot path or one draw from the process-global
``random`` generator makes results depend on wall time or import order
and silently breaks that determinism (DESIGN.md's substitution table:
wall clock -> ``VirtualClock``, OS randomness -> seeded ``Random``).
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from repro.analysis.core import Finding, Rule, SourceFile
from repro.analysis.rules.util import dotted_chain, walk_calls

#: Wall-clock reads and real sleeps, matched as dotted-chain suffixes so
#: both ``time.time()`` and ``datetime.datetime.now()`` are caught.
_BANNED_SUFFIXES: Tuple[str, ...] = (
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.sleep",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "date.today",
)

#: Names that, imported from ``time``/``datetime``, are banned outright.
_BANNED_IMPORTS = {
    "time": {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter",
             "perf_counter_ns", "process_time", "process_time_ns", "sleep"},
    "datetime": {"datetime", "date"},
}

#: Module-level functions of ``random`` that draw from the unseeded
#: process-global generator.  ``random.Random(seed)`` is the sanctioned
#: alternative; ``random.seed`` mutates cross-module shared state, which
#: is just as hostile to reproducibility.
_GLOBAL_RANDOM_FUNCS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "expovariate",
    "betavariate", "gammavariate", "lognormvariate", "paretovariate",
    "weibullvariate", "triangular", "vonmisesvariate", "randbytes",
    "getrandbits", "seed",
}


class HL001ClockPurity(Rule):
    code = "HL001"
    name = "clock-purity"
    rationale = ("simulated time must come from the virtual clock and "
                 "randomness from an explicitly seeded generator, or "
                 "golden-trace determinism breaks")

    def check(self, sf: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(sf.tree):
            if isinstance(node, ast.ImportFrom) and node.module:
                banned = _BANNED_IMPORTS.get(node.module, set())
                for alias in node.names:
                    if alias.name in banned:
                        findings.append(self.finding(
                            sf, node,
                            f"import of wall-clock symbol "
                            f"'{node.module}.{alias.name}'; use the "
                            f"virtual clock (repro.sim.VirtualClock)"))
        for call in walk_calls(sf.tree):
            chain = dotted_chain(call.func)
            if chain is None:
                continue
            for suffix in _BANNED_SUFFIXES:
                if chain == suffix or chain.endswith("." + suffix):
                    findings.append(self.finding(
                        sf, call,
                        f"wall-clock call '{chain}()'; simulated time "
                        f"must flow through the virtual clock"))
                    break
            else:
                findings.extend(self._check_random(sf, call, chain))
        return findings

    def _check_random(self, sf: SourceFile, call: ast.Call,
                      chain: str) -> List[Finding]:
        parts = chain.split(".")
        # random.<func>() on the process-global generator.
        if len(parts) == 2 and parts[0] == "random":
            if parts[1] in _GLOBAL_RANDOM_FUNCS:
                return [self.finding(
                    sf, call,
                    f"unseeded global RNG call '{chain}()'; use a seeded "
                    f"random.Random(seed) instance")]
            if parts[1] == "Random" and not call.args and not call.keywords:
                return [self.finding(
                    sf, call,
                    "random.Random() without a seed is time-seeded; pass "
                    "an explicit seed")]
        # numpy's module-level generator (np.random.*) and an unseeded
        # default_rng().
        if "random" in parts[:-1] and parts[0] in ("np", "numpy"):
            if parts[-1] == "default_rng" and (call.args or call.keywords):
                return []
            return [self.finding(
                sf, call,
                f"numpy global/unseeded RNG call '{chain}()'; use "
                f"numpy.random.default_rng(seed)")]
        return []
