"""HL011: borrowed extent ranges must not outlive the lending store.

The zero-copy read path (``read_refs``/``readv``) lends ``ExtentRef``
windows over buffers the store still owns; cleaning, crash-recovery
truncation, or a ``write_refs`` adoption may recycle those buffers at
any yield point after the call returns.  A borrow that is stored on
``self``, in a module global, or in a container that outlives the call
is therefore a latent use-after-release — exactly the class of bug the
runtime borrow sanitizer (``repro.analysis.sanitize``) traps, but a
whole-program scan catches it before it ever runs.  Writing *through* a
borrowed view is just as bad: the lender's buffer is shared with the
device image.

Returning a borrow is sanctioned — that is how the lending chain is
built — and the datapath/extent internals that implement the lending
protocol itself are exempt.
"""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.analysis.core import Finding, Rule, SourceFile
from repro.analysis.program.dataflow import analyze_borrows
from repro.analysis.program.summary import ModuleResolver, iter_functions

_KIND_HINTS = {
    "self": "the ref outlives the call via the instance",
    "global": "the ref outlives the call via module state",
    "container": "the container outlives the borrowing call",
    "mutation": "the lender still owns the underlying buffer",
}


class HL011BorrowEscape(Rule):
    code = "HL011"
    name = "borrow-escape"
    rationale = ("ExtentRef/memoryview borrows from a store are only "
                 "valid until the store recycles the buffer; storing "
                 "them on self/globals/long-lived containers or writing "
                 "through them is a latent use-after-release")
    #: The lending protocol's own implementation, and the sanitizer
    #: that wraps it at runtime, legitimately retain and rewrite refs.
    exempt = ("repro.blockdev.datapath", "repro.blockdev.extent",
              "repro.blockdev.base", "repro.analysis.sanitize")
    uses_program = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.program = None

    def prepare_program(self, program) -> None:
        self.program = program

    def check(self, sf: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        resolver = ModuleResolver(sf)
        is_borrow_call = (self.program.is_borrow_call
                          if self.program is not None else None)
        for _, fn, class_qname in iter_functions(sf):
            analysis = analyze_borrows(
                fn, resolver.function_resolver(fn, class_qname),
                is_borrow_call=is_borrow_call)
            findings.extend(self._emit(sf, analysis))
        module_body = self._module_level(sf)
        if module_body is not None:
            analysis = analyze_borrows(
                module_body, resolver.function_resolver(module_body, None),
                is_borrow_call=is_borrow_call, module_scope=True)
            findings.extend(self._emit(sf, analysis))
        return findings

    def _emit(self, sf: SourceFile, analysis) -> List[Finding]:
        out: List[Finding] = []
        for esc in analysis.escapes:
            hint = _KIND_HINTS.get(esc.kind, "")
            out.append(self.finding(
                sf, esc.node,
                f"borrow escape ({esc.kind}): {esc.detail}"
                + (f" — {hint}" if hint else "")))
        return out

    @staticmethod
    def _module_level(sf: SourceFile) -> Optional[ast.Module]:
        """Module-level statements only: function/class bodies are
        analyzed per function, so descending into them here would
        double-report every escape."""
        body = [stmt for stmt in sf.tree.body
                if not isinstance(stmt, (ast.FunctionDef,
                                         ast.AsyncFunctionDef,
                                         ast.ClassDef))]
        if not body:
            return None
        return ast.Module(body=body, type_ignores=[])
