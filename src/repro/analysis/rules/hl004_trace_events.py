"""HL004: every emitted trace event type is part of the taxonomy.

The runtime check in :meth:`repro.obs.trace.TraceRecorder.emit` rejects
unknown types, but only when the line actually executes — a misspelled
event in a rarely-taken branch ships silently.  This rule makes the
taxonomy a static property: every string literal (or ``EV_*`` constant)
passed to ``obs.event(...)`` / ``<recorder>.emit(...)`` must resolve to
:data:`repro.obs.trace.BASE_EVENT_TYPES` — the same single source of
truth the runtime uses — or to a ``register_event_type("…")`` call or
``EV_* = "…"`` constant visible somewhere in the analyzed tree.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set

from repro.analysis.core import Finding, Rule, SourceFile
from repro.analysis.rules.util import call_name, walk_calls
from repro.obs.trace import BASE_EVENT_TYPES

_EMIT_NAMES = frozenset({"emit", "event"})


class HL004TraceEvents(Rule):
    code = "HL004"
    name = "trace-event-completeness"
    rationale = ("an event type outside the registered taxonomy raises "
                 "TraceError at runtime — but only on the branch that "
                 "emits it; the taxonomy should be checkable statically")

    def __init__(self, **kwargs: object) -> None:
        super().__init__(**kwargs)  # type: ignore[arg-type]
        self._known: Set[str] = set(BASE_EVENT_TYPES)
        self._constants: Dict[str, str] = {}

    def prepare(self, files: Sequence[SourceFile]) -> None:
        self._known = set(BASE_EVENT_TYPES)
        self._constants = {}
        # EV_* constants defined in the trace module itself are base.
        # (importlib, because ``repro.obs`` exports a helper *function*
        # named ``trace`` that shadows the submodule on attribute access.)
        import importlib
        trace_mod = importlib.import_module("repro.obs.trace")
        for name in dir(trace_mod):
            if name.startswith("EV_"):
                value = getattr(trace_mod, name)
                if isinstance(value, str):
                    self._constants[name] = value
        for sf in files:
            for call in walk_calls(sf.tree):
                if call_name(call) == "register_event_type" and call.args:
                    arg = call.args[0]
                    if isinstance(arg, ast.Constant) and isinstance(
                            arg.value, str):
                        self._known.add(arg.value)
            for node in ast.walk(sf.tree):
                if not isinstance(node, ast.Assign):
                    continue
                value = self._assigned_literal(node.value)
                if value is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name) and \
                            target.id.startswith("EV_"):
                        self._constants[target.id] = value

    @staticmethod
    def _assigned_literal(value: ast.expr) -> Optional[str]:
        """The event-type string an ``EV_* = ...`` assignment pins down.

        Covers both ``EV_X = "x"`` and the registration idiom
        ``EV_X = register_event_type("x")``.
        """
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            return value.value
        if (isinstance(value, ast.Call)
                and call_name(value) == "register_event_type"
                and value.args
                and isinstance(value.args[0], ast.Constant)
                and isinstance(value.args[0].value, str)):
            return value.args[0].value
        return None

    def check(self, sf: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for call in walk_calls(sf.tree):
            if call_name(call) not in _EMIT_NAMES or not call.args:
                continue
            arg = call.args[0]
            etype = self._resolve(arg)
            if etype is None:
                continue  # dynamic expression or non-event emit()
            if etype not in self._known:
                findings.append(self.finding(
                    sf, call,
                    f"trace event type {etype!r} is not in "
                    f"BASE_EVENT_TYPES and no register_event_type() call "
                    f"for it is visible; register it or fix the name"))
        return findings

    def _resolve(self, arg: ast.AST) -> Optional[str]:
        """A checkable event-type expression, or None to skip."""
        if isinstance(arg, ast.Constant) and isinstance(arg.value, str):
            return arg.value
        name: Optional[str] = None
        if isinstance(arg, ast.Name):
            name = arg.id
        elif isinstance(arg, ast.Attribute):
            name = arg.attr
        if name is not None and name.startswith("EV_"):
            # Unknown EV_ constants map to a sentinel that can never be
            # registered, so they are reported rather than skipped.
            return self._constants.get(name, f"<undefined constant {name}>")
        return None
