"""HL009: device-error retries go through ``repro.faults.RetryPolicy``.

A loop that catches a transient device error (``TransientMediaError``,
``MountFailure``, ``DriveTimeout``, or the blanket ``DeviceError``) and
simply iterates again is a *blind* retry: unbounded attempts, no
backoff, no per-class deadline, no health-registry reporting, and no
``retry`` trace event.  Under a genuinely failing medium such a loop
spins forever in virtual time, and even when it terminates it hides the
error count the quarantine machinery needs.  The one sanctioned retry
engine is :class:`repro.faults.retry.RetryPolicy` — bounded attempts,
seeded exponential backoff, deadlines, escalation to ``MediaFailure`` —
so ``repro.faults`` is the only package allowed to loop on these
exceptions.

Catching a *permanent* error (``PermanentDeviceError``,
``MediaFailure``) inside a loop is not retry: retrying a destroyed
medium is pointless, and the legitimate pattern — fail over to a
*different* volume per iteration, as the replica writer does — catches
exactly the permanent class.  Handlers that re-raise, ``break``, or
``return`` escape the loop and are likewise fine.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set

from repro.analysis.core import Finding, Rule, SourceFile

#: The retry-able (transient) family plus the blanket base class.
_RETRYABLE = frozenset({"DeviceError", "TransientDeviceError",
                        "TransientMediaError", "MountFailure",
                        "DriveTimeout"})

_LOOPS = (ast.While, ast.For, ast.AsyncFor)
_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)


def _caught_names(type_node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    for node in nodes:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _walk_same_scope(nodes) -> Iterator[ast.AST]:
    """Walk statements without descending into nested def/class bodies
    (a handler inside an inner function does not loop with us)."""
    stack = list(nodes)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, _SCOPES):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _escapes_loop(handler: ast.ExceptHandler) -> bool:
    """True when the handler leaves the loop instead of iterating on."""
    for node in _walk_same_scope(handler.body):
        if isinstance(node, (ast.Raise, ast.Break, ast.Return)):
            return True
    return False


class HL009RetryDiscipline(Rule):
    code = "HL009"
    name = "retry-discipline"
    rationale = ("a loop that swallows transient device errors and "
                 "iterates again is an unbounded blind retry; bounded "
                 "backoff retries live in repro.faults.RetryPolicy")
    exempt = ("repro.faults",)

    def check(self, sf: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        seen: Set[int] = set()
        for loop in ast.walk(sf.tree):
            if not isinstance(loop, _LOOPS):
                continue
            for node in _walk_same_scope(loop.body):
                if not isinstance(node, ast.ExceptHandler):
                    continue
                if id(node) in seen or node.type is None:
                    continue
                retryable = _caught_names(node.type) & _RETRYABLE
                if not retryable or _escapes_loop(node):
                    continue
                seen.add(id(node))
                names = ", ".join(sorted(retryable))
                findings.append(self.finding(
                    sf, node,
                    f"loop swallows {names} and iterates again (blind "
                    f"retry); run the attempt under "
                    f"repro.faults.RetryPolicy instead"))
        return findings
