"""HL006: the filesystem core never swallows errors blindly.

``repro.lfs`` and ``repro.core`` implement the structures whose
integrity everything else assumes (the log, the ifile, the cache
directory, the migration pipeline).  A bare ``except:`` — or an
``except Exception:`` whose handler neither re-raises nor even looks at
the error — turns a corruption bug into a silent wrong answer.  The
library's :class:`repro.errors.ReproError` hierarchy exists precisely so
handlers can name the failure they expect (``FileNotFound`` for a
vanished inode, ``AddressError`` for an unmapped block, …) and let
everything else propagate.
"""

from __future__ import annotations

import ast
from typing import List, Set

from repro.analysis.core import Finding, Rule, SourceFile

_BLIND_TYPES = frozenset({"Exception", "BaseException"})


def _caught_names(type_node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    nodes = type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
    for node in nodes:
        if isinstance(node, ast.Name):
            names.add(node.id)
        elif isinstance(node, ast.Attribute):
            names.add(node.attr)
    return names


def _handler_is_blind(handler: ast.ExceptHandler) -> bool:
    """True when the handler can neither distinguish nor surface errors."""
    for node in handler.body:
        for sub in ast.walk(node):
            if isinstance(sub, ast.Raise):
                return False
            if (handler.name is not None and isinstance(sub, ast.Name)
                    and sub.id == handler.name):
                return False
    return True


class HL006ExceptionDiscipline(Rule):
    code = "HL006"
    name = "exception-discipline"
    rationale = ("a blind except in the filesystem core turns corruption "
                 "into silent wrong answers; catch the specific "
                 "ReproError subclass you expect")
    scope = ("repro.lfs", "repro.core")

    def check(self, sf: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(sf.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                findings.append(self.finding(
                    sf, node,
                    "bare 'except:' swallows every error including "
                    "KeyboardInterrupt; catch a specific ReproError "
                    "subclass"))
                continue
            caught = _caught_names(node.type)
            if caught & _BLIND_TYPES and _handler_is_blind(node):
                wide = ", ".join(sorted(caught & _BLIND_TYPES))
                findings.append(self.finding(
                    sf, node,
                    f"'except {wide}' neither re-raises nor inspects the "
                    f"error; catch the specific ReproError subclass this "
                    f"path expects"))
        return findings
