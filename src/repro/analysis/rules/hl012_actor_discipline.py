"""HL012: actors may not mutate each other's owned state directly.

The cooperative simulation gives every actor its own clock and time
account; causality between actors is established *only* through the
scheduler and the timed channels (``repro.sim.scheduler``), which know
how to order wakeups deterministically.  Code running on behalf of one
actor that directly advances another actor's clock, sleeps it, or
charges its account creates cross-actor causality the scheduler never
sees — the classic symptom is a golden trace that reorders under an
unrelated change.

"Running on behalf of an actor" is the codebase's explicit convention:
such functions take the executing actor as a parameter (named ``actor``
or ``Actor``-annotated).  Within them, any *other* actor-valued
expression — another actor parameter, a ``self.<attr>`` the program
index knows holds an ``Actor``, or a name whose spelling marks it as an
actor — is foreign state.  Actors constructed locally in the same
function are owned by it and are fair game (that is how scenario
drivers bootstrap), and the scheduler/channel layer itself
(``repro.sim``) is exempt: it is the sanctioned mutation path.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Sequence, Set, Tuple

from repro.analysis.core import Finding, Rule, SourceFile
from repro.analysis.program.summary import (ModuleResolver,
                                            actor_param_names,
                                            iter_functions)
from repro.analysis.rules.util import dotted_chain

#: ``<actor expr>.<suffix>(...)`` call shapes that mutate actor-owned
#: state: the actor's own timeline, its clock, its time account.
_MUTATOR_SUFFIXES: Tuple[Tuple[str, ...], ...] = (
    ("sleep",),
    ("sleep_until",),
    ("clock", "advance"),
    ("clock", "advance_to"),
    ("account", "charge"),
    ("account", "clear"),
)


def _actorish_name(name: str) -> bool:
    """Spelling heuristic for actor-valued locals/params beyond the
    executing ``actor`` parameter itself."""
    return (name == "actor" or name.endswith("_actor")
            or name.startswith("actor_"))


class HL012ActorDiscipline(Rule):
    code = "HL012"
    name = "cross-actor-state"
    rationale = ("one actor's code must not mutate another actor's "
                 "clock, timeline, or account directly; cross-actor "
                 "causality flows through the scheduler and timed "
                 "channels, or trace determinism breaks")
    #: The scheduler/channel layer is the sanctioned mutation path —
    #: and so is the cluster's routing/migration layer, which performs
    #: the documented conservative join of the shared-nothing shard
    #: timelines (requests arrive at the client's time, shards serve on
    #: their own timelines, the client resumes at the latest
    #: completion; see repro.cluster.router).  The frontend's cluster
    #: backend adapter performs the same join for its background verbs
    #: (migrate/prefetch fan-out onto the owning shards' actors).
    exempt = ("repro.sim", "repro.cluster.router", "repro.cluster.migrate",
              "repro.frontend.backends")
    uses_program = True

    def __init__(self, *args, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        self.program = None

    def prepare_program(self, program) -> None:
        self.program = program

    def check(self, sf: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        resolver = ModuleResolver(sf)
        for _, fn, class_qname in iter_functions(sf):
            actor_params = actor_param_names(fn, resolver.imports)
            if not actor_params:
                continue  # not actor-context code
            executing = ("actor" if "actor" in actor_params
                         else actor_params[0])
            foreign = self._foreign_bases(
                fn, class_qname, resolver, actor_params, executing)
            # local_actor_names types Actor-annotated *params* too, but a
            # parameter's actor arrives from a caller — only actors
            # constructed in this body are owned by it.
            owned = set(resolver.local_actor_names(fn)) - set(actor_params)
            findings.extend(self._scan(
                sf, fn, executing, foreign, owned))
        return findings

    def _foreign_bases(self, fn: ast.AST, class_qname: Optional[str],
                       resolver: ModuleResolver,
                       actor_params: Sequence[str],
                       executing: str) -> Set[str]:
        """Dotted bases known to hold an actor that is NOT the executing
        one: other actor params, and Actor-typed instance attributes."""
        foreign: Set[str] = {p for p in actor_params if p != executing}
        if class_qname and self.program is not None:
            for attr in self.program.actor_attrs(class_qname):
                foreign.add(f"self.{attr}")
        return foreign

    def _scan(self, sf: SourceFile, fn: ast.AST, executing: str,
              foreign: Set[str], owned: Set[str]) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(fn):
            if isinstance(node, ast.Call):
                hit = self._mutator_base(node)
                if hit is None:
                    continue
                base, suffix = hit
                verdict = self._classify(base, executing, foreign, owned)
                if verdict is not None:
                    findings.append(self.finding(
                        sf, node,
                        f"cross-actor mutation '{base}.{suffix}(...)' "
                        f"({verdict}); route it through the scheduler "
                        f"or a timed channel (repro.sim)"))
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (node.targets
                           if isinstance(node, ast.Assign)
                           else [node.target])
                for target in targets:
                    chain = dotted_chain(target)
                    if chain is None or "." not in chain:
                        continue
                    base = self._owning_actor(chain, executing,
                                              foreign, owned)
                    if base is not None:
                        findings.append(self.finding(
                            sf, node,
                            f"attribute store '{chain} = ...' writes "
                            f"another actor's owned object ('{base}'); "
                            f"only the owning actor or the scheduler "
                            f"may"))
        return findings

    @staticmethod
    def _mutator_base(call: ast.Call) -> Optional[Tuple[str, str]]:
        """``(base, suffix)`` when the call matches a mutator shape:
        ``peer.clock.advance(t)`` -> ``("peer", "clock.advance")``."""
        chain = dotted_chain(call.func)
        if chain is None:
            return None
        parts = chain.split(".")
        for suffix in _MUTATOR_SUFFIXES:
            n = len(suffix)
            if len(parts) > n and tuple(parts[-n:]) == suffix:
                return ".".join(parts[:-n]), ".".join(suffix)
        return None

    @staticmethod
    def _classify(base: str, executing: str, foreign: Set[str],
                  owned: Set[str]) -> Optional[str]:
        """A diagnostic tag when ``base`` is a foreign actor, else None
        (executing actor, locally-owned actor, or unknown receiver)."""
        if base == executing or base in owned:
            return None
        if base in foreign:
            return ("instance-held actor" if base.startswith("self.")
                    else "actor parameter other than the executing one")
        head = base.split(".")[0]
        if head in owned:
            return None
        if _actorish_name(base.split(".")[-1]):
            return "actor-named receiver"
        return None

    @staticmethod
    def _owning_actor(chain: str, executing: str, foreign: Set[str],
                      owned: Set[str]) -> Optional[str]:
        """The foreign-actor prefix of an attribute-store chain, e.g.
        ``peer.clock.now`` -> ``peer`` when ``peer`` is foreign."""
        parts = chain.split(".")
        for cut in range(1, len(parts)):
            prefix = ".".join(parts[:cut])
            if prefix == executing or prefix in owned:
                return None
            if prefix in foreign:
                return prefix
            if cut == 1 and _actorish_name(parts[0]) \
                    and parts[0] != executing:
                return prefix
        return None
