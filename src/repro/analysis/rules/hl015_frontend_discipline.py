"""HL015: data-plane I/O enters through a Client session, not raw fs.

PR 10 gave the repo one front door: every application-level read/write
is supposed to flow through a :class:`repro.frontend.session.Client`,
where it is attributed to a tenant, paced by that tenant's token
bucket, counted in the ``frontend_*`` series, and visible to the SLO
report.  A stray ``fs.read_path(...)`` in driver-level code moves the
same bytes with none of that — the request is invisible to admission
control and the per-tenant accounting quietly under-reports.

Same name-heuristic choke-point pattern as HL002/HL007/HL014: the rule
flags ``read_path``/``write_path`` calls whose receiver chain names a
filesystem handle (``fs``, ``self.fs``, ``bed.fs``, ``node.fs``...).
The storage stack itself is exempt — ``repro.core``/``repro.lfs``/
``repro.ffs`` *implement* the path API, the cluster shards store extent
objects through it, and the frontend's backend adapters are the
sanctioned translation layer — as are the harness/table benches that
predate (and deliberately bypass) tenancy.  Scenario code that models
*clients*, starting with ``repro.bench.frontend_scenario``, must go
through the Client.
"""

from __future__ import annotations

import ast
from typing import List, Tuple

from repro.analysis.core import Finding, Rule, SourceFile
from repro.analysis.rules.util import dotted_chain, walk_calls

#: The path-level data plane (block/extent-level ``read``/``write``
#: inside the stack charge their own discipline via HL002/HL008).
_DATA_METHODS = frozenset({"read_path", "write_path"})

#: A receiver chain link denoting a filesystem handle.
_FS_NAMES = frozenset({"fs"})

_DEFAULT_EXEMPT: Tuple[str, ...] = (
    # The stack that implements (and internally composes) the path API.
    "repro.core", "repro.lfs", "repro.ffs",
    # Persistence/fault/recovery machinery operates below sessions.
    "repro.persist", "repro.faults",
    # Shards store extent objects via their private fs; the router is
    # the cluster's internal data plane (HL014 owns its discipline).
    "repro.cluster",
    # Workload/check drivers that exercise the raw filesystems
    # (FFS/LFS A/B comparisons have no HighLight service underneath).
    "repro.workloads",
    # The frontend's own backend adapters: the sanctioned translation
    # from Client verbs to fs calls.
    "repro.frontend.backends",
    # Pre-tenancy benches and harness plumbing (paper tables measure
    # the bare stack on purpose).  Note repro.bench.frontend_scenario
    # is NOT here: the multi-tenant scenario must drive the Client.
    "repro.bench.harness", "repro.bench.tables", "repro.bench.figures",
    "repro.bench.perf", "repro.bench.policy_eval",
    "repro.bench.scenarios", "repro.bench.cluster_scenario",
    # Rule modules quote the patterns they look for.
    "repro.analysis",
)


def _fs_link(receiver: ast.AST) -> str | None:
    """Walk a call's receiver chain; return the dotted rendering of the
    first link that names a filesystem handle, else None."""
    cur = receiver
    while True:
        if isinstance(cur, ast.Attribute):
            if cur.attr in _FS_NAMES:
                return dotted_chain(cur) or f"<...>.{cur.attr}"
            cur = cur.value
        elif isinstance(cur, ast.Subscript):
            cur = cur.value
        elif isinstance(cur, ast.Name):
            if cur.id in _FS_NAMES:
                return cur.id
            return None
        else:
            return None


class HL015FrontendDiscipline(Rule):
    code = "HL015"
    name = "frontend-discipline"
    rationale = ("raw fs path I/O bypasses tenant attribution, "
                 "token-bucket admission, and the frontend_* SLO "
                 "accounting; data-plane requests enter through a "
                 "Client session")
    exempt = _DEFAULT_EXEMPT

    def check(self, sf: SourceFile) -> List[Finding]:
        findings: List[Finding] = []
        for call in walk_calls(sf.tree):
            func = call.func
            if not isinstance(func, ast.Attribute):
                continue
            if func.attr not in _DATA_METHODS:
                continue
            link = _fs_link(func.value)
            if link is not None:
                findings.append(self.finding(
                    sf, call,
                    f"raw data-plane I/O '{link}.…{func.attr}(...)'; "
                    f"open a session through the Client API "
                    f"(repro.open_node / repro.open_cluster) instead"))
        return findings
