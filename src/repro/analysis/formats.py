"""Output renderers for analysis results: SARIF and GitHub annotations.

Two machine formats beyond the CLI's text/JSON:

* **SARIF 2.1.0** (``--format sarif``) — the interchange format GitHub
  code scanning ingests; one run, one driver, the full rule catalogue
  under ``tool.driver.rules`` and one ``result`` per finding.
* **GitHub workflow commands** (``--format github``) — ``::error``
  annotation lines the Actions runner turns into inline PR annotations;
  zero extra tooling in CI.

Both renderers are pure functions of the (sorted) result, so their
output inherits the analyzer's byte-identical determinism.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.analysis.core import AnalysisResult, Rule

__all__ = ["to_github", "to_sarif"]

_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/sarif-spec/"
                 "master/Schemata/sarif-schema-2.1.0.json")


def to_sarif(result: AnalysisResult,
             rules: Sequence[Rule]) -> Dict[str, object]:
    """Render ``result`` as a SARIF 2.1.0 log dictionary."""
    rule_meta = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.name},
            "fullDescription": {"text": rule.rationale},
        }
        for rule in sorted(rules, key=lambda r: r.code)
    ]
    results: List[Dict[str, object]] = []
    for f in sorted(result.findings):
        results.append({
            "ruleId": f.code,
            "level": "error",
            "message": {"text": f.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {
                        "startLine": f.line,
                        # SARIF columns are 1-based; AST columns 0-based.
                        "startColumn": f.col + 1,
                    },
                },
            }],
        })
    return {
        "$schema": _SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-analysis",
                    "informationUri":
                        "https://example.invalid/docs/ANALYSIS.md",
                    "rules": rule_meta,
                },
            },
            "results": results,
        }],
    }


def to_github(result: AnalysisResult) -> List[str]:
    """Render findings as GitHub Actions ``::error`` workflow commands."""
    lines: List[str] = []
    for f in sorted(result.findings):
        message = f.message.replace("%", "%25").replace("\n", "%0A")
        lines.append(
            f"::error file={f.path},line={f.line},col={f.col + 1},"
            f"title={f.code}::{message}")
    for err in result.errors:
        text = err.replace("%", "%25").replace("\n", "%0A")
        lines.append(f"::error title=analysis-error::{text}")
    return lines
