"""The analysis framework: source files, findings, rules, and the driver.

One :class:`SourceFile` per analyzed module carries the parsed AST, the
derived dotted module name (used for rule scoping), and the per-line
``# noqa`` suppression table.  A :class:`Rule` is an AST visitor plugin
identified by an ``HL0xx`` code; the :class:`Analyzer` runs a two-phase
pass (``prepare`` across all files, then ``check`` per file) so rules
like HL004 can collect repo-wide facts before judging individual lines.
"""

from __future__ import annotations

import ast
import io
import re
import threading
import tokenize
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "AnalysisError",
    "AnalysisResult",
    "Analyzer",
    "Finding",
    "Rule",
    "SourceFile",
    "dotted_name",
]

#: ``# noqa`` / ``# noqa: HL001`` / ``# noqa: HL001, HL004``
_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*))?",
    re.IGNORECASE)

_CODE_RE = re.compile(r"^HL\d{3}$")


class AnalysisError(Exception):
    """Misuse of the analysis framework (bad rule, unreadable path)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    #: Last physical line of the flagged statement; ``# noqa`` on any
    #: line of a multi-line statement suppresses the finding.
    end_line: int = 0

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}


#: CPython 3.11 tracks the AST constructor's recursion depth in
#: *per-interpreter* state (Python-ast.c), so two ``compile()`` calls
#: overlapping across threads corrupt the counter and raise
#: ``SystemError: AST constructor recursion depth mismatch``.  Parsing
#: therefore serializes on this lock; file reads and the tokenize scan
#: still run in parallel under ``--jobs``.
_AST_PARSE_LOCK = threading.Lock()


class SourceFile:
    """A parsed module plus the metadata rules match against."""

    def __init__(self, path: Path, display_path: str, text: str) -> None:
        self.path = path
        self.display_path = display_path
        self.text = text
        with _AST_PARSE_LOCK:
            self.tree = ast.parse(text, filename=str(path))
        self.module = dotted_name(path)
        #: line -> frozenset of suppressed codes; empty set = blanket noqa.
        #: Only real COMMENT tokens count — a ``"# noqa"`` inside a string
        #: literal must not suppress anything, so the scan tokenizes the
        #: source instead of regexing raw lines.
        self.noqa: Dict[int, FrozenSet[str]] = {}
        for tok in tokenize.generate_tokens(io.StringIO(text).readline):
            if tok.type != tokenize.COMMENT:
                continue
            match = _NOQA_RE.search(tok.string)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                self.noqa[tok.start[0]] = frozenset()
            else:
                self.noqa[tok.start[0]] = frozenset(
                    c.strip().upper() for c in codes.split(","))

    def suppresses(self, finding: Finding) -> bool:
        """True if a ``# noqa`` comment covers ``finding``."""
        last = max(finding.line, finding.end_line or finding.line)
        for lineno in range(finding.line, last + 1):
            codes = self.noqa.get(lineno)
            if codes is None:
                continue
            if not codes or finding.code in codes:
                return True
        return False


def dotted_name(path: Path) -> str:
    """Derive a dotted module name for scoping rules.

    The name is rooted at the last ``repro`` path component, so both
    ``src/repro/lfs/check.py`` and a test fixture laid out as
    ``tests/analysis_fixtures/repro/lfs/bad.py`` scope as
    ``repro.lfs.…``.  Files outside any ``repro`` directory scope as
    their bare stem.
    """
    parts = list(path.parts)
    if path.suffix == ".py":
        parts[-1] = path.stem
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[idx:]
        return ".".join(parts) if parts else "repro"
    return parts[-1] if parts else ""


def _in_scope(module: str, prefixes: Sequence[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


class Rule:
    """Base class for one invariant check.

    Subclasses set ``code``/``name``/``rationale`` and implement
    :meth:`check`.  ``scope`` limits the rule to dotted-module prefixes
    (empty = everywhere); ``exempt`` carves out prefixes where the
    pattern is the sanctioned implementation itself.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    scope: Tuple[str, ...] = ()
    exempt: Tuple[str, ...] = ()
    #: Interprocedural rules set this; the Analyzer then builds one
    #: shared ProgramIndex per run and calls :meth:`prepare_program`.
    uses_program: bool = False

    def __init__(self, scope: Optional[Tuple[str, ...]] = None,
                 exempt: Optional[Tuple[str, ...]] = None) -> None:
        if not _CODE_RE.match(self.code):
            raise AnalysisError(
                f"rule {type(self).__name__} has invalid code {self.code!r}")
        if scope is not None:
            self.scope = tuple(scope)
        if exempt is not None:
            self.exempt = tuple(exempt)

    def applies_to(self, sf: SourceFile) -> bool:
        if self.exempt and _in_scope(sf.module, self.exempt):
            return False
        if self.scope:
            return _in_scope(sf.module, self.scope)
        return True

    def prepare(self, files: Sequence[SourceFile]) -> None:
        """Optional repo-wide fact-collection pass before :meth:`check`."""

    def prepare_program(self, program) -> None:
        """Receive the shared whole-program index (``uses_program`` rules
        only); called after :meth:`prepare`, before any :meth:`check`."""

    def check(self, sf: SourceFile) -> List[Finding]:
        raise NotImplementedError

    def finding(self, sf: SourceFile, node: ast.AST, message: str) -> Finding:
        return Finding(path=sf.display_path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       code=self.code, message=message,
                       end_line=getattr(node, "end_lineno", 0) or 0)


@dataclass
class AnalysisResult:
    """Everything one analysis pass produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_analyzed: int = 0
    errors: List[str] = field(default_factory=list)
    #: Program-index build accounting (None when no rule needed it).
    #: Deliberately excluded from :meth:`to_dict`: build timing would
    #: break byte-identical output determinism.
    index_stats: Optional[object] = None

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def counts_by_code(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.code] = out.get(f.code, 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> Dict[str, object]:
        return {
            "files_analyzed": self.files_analyzed,
            "findings": [f.to_dict() for f in sorted(self.findings)],
            "suppressed": len(self.suppressed),
            "counts": self.counts_by_code(),
            "errors": list(self.errors),
            "ok": self.ok,
        }


class Analyzer:
    """Loads sources, runs every rule, filters ``# noqa`` suppressions."""

    def __init__(self, rules: Sequence[Rule],
                 index_cache: Optional[Path] = None) -> None:
        codes = [r.code for r in rules]
        dupes = {c for c in codes if codes.count(c) > 1}
        if dupes:
            raise AnalysisError(f"duplicate rule codes: {sorted(dupes)}")
        self.rules = list(rules)
        #: On-disk summary-cache location for the whole-program index.
        self.index_cache = index_cache

    # -- source loading ----------------------------------------------------

    @staticmethod
    def collect_files(paths: Iterable[str]) -> List[Path]:
        """Expand ``paths`` to the ordered, deduplicated file list.

        Overlapping inputs (a directory plus a file inside it, the same
        path twice) must not analyze — and double-report — a file twice,
        so collection dedupes on the resolved path while keeping the
        first-seen order.
        """
        out: List[Path] = []
        seen: set = set()
        for raw in paths:
            p = Path(raw)
            if p.is_dir():
                candidates: List[Path] = sorted(p.rglob("*.py"))
            elif p.is_file():
                candidates = [p]
            else:
                raise AnalysisError(f"no such file or directory: {raw}")
            for candidate in candidates:
                key = candidate.resolve()
                if key not in seen:
                    seen.add(key)
                    out.append(candidate)
        return out

    def load(self, paths: Iterable[str],
             errors: Optional[List[str]] = None,
             jobs: int = 1) -> List[SourceFile]:
        """Parse every collected file; ``jobs > 1`` parses in parallel.

        Output is ordered by collection order either way, so serial and
        parallel loads feed rules byte-identical input (pinned by the
        determinism test in ``tests/test_analysis.py``).
        """
        collected = self.collect_files(paths)

        def parse(path: Path):
            text = path.read_text(encoding="utf-8")
            try:
                return SourceFile(path, str(path), text), None
            except SyntaxError as exc:
                return None, (f"{path}: syntax error: {exc.msg} "
                              f"(line {exc.lineno})")

        if jobs > 1:
            with ThreadPoolExecutor(max_workers=jobs) as pool:
                parsed = list(pool.map(parse, collected))
        else:
            parsed = [parse(path) for path in collected]
        files: List[SourceFile] = []
        for sf, err in parsed:
            if err is not None:
                if errors is None:
                    raise AnalysisError(err)
                errors.append(err)
            else:
                files.append(sf)
        return files

    # -- driving -----------------------------------------------------------

    def run(self, paths: Iterable[str], jobs: int = 1) -> AnalysisResult:
        result = AnalysisResult()
        files = self.load(paths, errors=result.errors, jobs=jobs)
        result.files_analyzed = len(files)
        for rule in self.rules:
            rule.prepare(files)
        if any(rule.uses_program for rule in self.rules):
            # One shared index per run; building it per rule would
            # triple the dominant cost of a whole-tree pass.
            from repro.analysis.program.index import ProgramIndex
            program = ProgramIndex.build(files, cache_path=self.index_cache)
            result.index_stats = program.stats
            for rule in self.rules:
                if rule.uses_program:
                    rule.prepare_program(program)
        for sf in files:
            for rule in self.rules:
                if not rule.applies_to(sf):
                    continue
                for finding in rule.check(sf):
                    if sf.suppresses(finding):
                        result.suppressed.append(finding)
                    else:
                        result.findings.append(finding)
        result.findings.sort()
        result.suppressed.sort()
        return result
