"""The analysis framework: source files, findings, rules, and the driver.

One :class:`SourceFile` per analyzed module carries the parsed AST, the
derived dotted module name (used for rule scoping), and the per-line
``# noqa`` suppression table.  A :class:`Rule` is an AST visitor plugin
identified by an ``HL0xx`` code; the :class:`Analyzer` runs a two-phase
pass (``prepare`` across all files, then ``check`` per file) so rules
like HL004 can collect repo-wide facts before judging individual lines.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "AnalysisError",
    "AnalysisResult",
    "Analyzer",
    "Finding",
    "Rule",
    "SourceFile",
    "dotted_name",
]

#: ``# noqa`` / ``# noqa: HL001`` / ``# noqa: HL001, HL004``
_NOQA_RE = re.compile(
    r"#\s*noqa(?::\s*(?P<codes>[A-Z]{2}\d{3}(?:\s*,\s*[A-Z]{2}\d{3})*))?",
    re.IGNORECASE)

_CODE_RE = re.compile(r"^HL\d{3}$")


class AnalysisError(Exception):
    """Misuse of the analysis framework (bad rule, unreadable path)."""


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    code: str
    message: str
    #: Last physical line of the flagged statement; ``# noqa`` on any
    #: line of a multi-line statement suppresses the finding.
    end_line: int = 0

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    def to_dict(self) -> Dict[str, object]:
        return {"path": self.path, "line": self.line, "col": self.col,
                "code": self.code, "message": self.message}


class SourceFile:
    """A parsed module plus the metadata rules match against."""

    def __init__(self, path: Path, display_path: str, text: str) -> None:
        self.path = path
        self.display_path = display_path
        self.text = text
        self.tree = ast.parse(text, filename=str(path))
        self.module = dotted_name(path)
        #: line -> frozenset of suppressed codes; empty set = blanket noqa.
        self.noqa: Dict[int, FrozenSet[str]] = {}
        for lineno, line in enumerate(text.splitlines(), start=1):
            match = _NOQA_RE.search(line)
            if match is None:
                continue
            codes = match.group("codes")
            if codes is None:
                self.noqa[lineno] = frozenset()
            else:
                self.noqa[lineno] = frozenset(
                    c.strip().upper() for c in codes.split(","))

    def suppresses(self, finding: Finding) -> bool:
        """True if a ``# noqa`` comment covers ``finding``."""
        last = max(finding.line, finding.end_line or finding.line)
        for lineno in range(finding.line, last + 1):
            codes = self.noqa.get(lineno)
            if codes is None:
                continue
            if not codes or finding.code in codes:
                return True
        return False


def dotted_name(path: Path) -> str:
    """Derive a dotted module name for scoping rules.

    The name is rooted at the last ``repro`` path component, so both
    ``src/repro/lfs/check.py`` and a test fixture laid out as
    ``tests/analysis_fixtures/repro/lfs/bad.py`` scope as
    ``repro.lfs.…``.  Files outside any ``repro`` directory scope as
    their bare stem.
    """
    parts = list(path.parts)
    if path.suffix == ".py":
        parts[-1] = path.stem
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    if "repro" in parts:
        idx = len(parts) - 1 - parts[::-1].index("repro")
        parts = parts[idx:]
        return ".".join(parts) if parts else "repro"
    return parts[-1] if parts else ""


def _in_scope(module: str, prefixes: Sequence[str]) -> bool:
    return any(module == p or module.startswith(p + ".") for p in prefixes)


class Rule:
    """Base class for one invariant check.

    Subclasses set ``code``/``name``/``rationale`` and implement
    :meth:`check`.  ``scope`` limits the rule to dotted-module prefixes
    (empty = everywhere); ``exempt`` carves out prefixes where the
    pattern is the sanctioned implementation itself.
    """

    code: str = ""
    name: str = ""
    rationale: str = ""
    scope: Tuple[str, ...] = ()
    exempt: Tuple[str, ...] = ()

    def __init__(self, scope: Optional[Tuple[str, ...]] = None,
                 exempt: Optional[Tuple[str, ...]] = None) -> None:
        if not _CODE_RE.match(self.code):
            raise AnalysisError(
                f"rule {type(self).__name__} has invalid code {self.code!r}")
        if scope is not None:
            self.scope = tuple(scope)
        if exempt is not None:
            self.exempt = tuple(exempt)

    def applies_to(self, sf: SourceFile) -> bool:
        if self.exempt and _in_scope(sf.module, self.exempt):
            return False
        if self.scope:
            return _in_scope(sf.module, self.scope)
        return True

    def prepare(self, files: Sequence[SourceFile]) -> None:
        """Optional repo-wide fact-collection pass before :meth:`check`."""

    def check(self, sf: SourceFile) -> List[Finding]:
        raise NotImplementedError

    def finding(self, sf: SourceFile, node: ast.AST, message: str) -> Finding:
        return Finding(path=sf.display_path,
                       line=getattr(node, "lineno", 1),
                       col=getattr(node, "col_offset", 0),
                       code=self.code, message=message,
                       end_line=getattr(node, "end_lineno", 0) or 0)


@dataclass
class AnalysisResult:
    """Everything one analysis pass produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    files_analyzed: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings and not self.errors

    def counts_by_code(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for f in self.findings:
            out[f.code] = out.get(f.code, 0) + 1
        return dict(sorted(out.items()))

    def to_dict(self) -> Dict[str, object]:
        return {
            "files_analyzed": self.files_analyzed,
            "findings": [f.to_dict() for f in sorted(self.findings)],
            "suppressed": len(self.suppressed),
            "counts": self.counts_by_code(),
            "errors": list(self.errors),
            "ok": self.ok,
        }


class Analyzer:
    """Loads sources, runs every rule, filters ``# noqa`` suppressions."""

    def __init__(self, rules: Sequence[Rule]) -> None:
        codes = [r.code for r in rules]
        dupes = {c for c in codes if codes.count(c) > 1}
        if dupes:
            raise AnalysisError(f"duplicate rule codes: {sorted(dupes)}")
        self.rules = list(rules)

    # -- source loading ----------------------------------------------------

    @staticmethod
    def collect_files(paths: Iterable[str]) -> List[Path]:
        out: List[Path] = []
        for raw in paths:
            p = Path(raw)
            if p.is_dir():
                out.extend(sorted(p.rglob("*.py")))
            elif p.is_file():
                out.append(p)
            else:
                raise AnalysisError(f"no such file or directory: {raw}")
        return out

    def load(self, paths: Iterable[str],
             errors: Optional[List[str]] = None) -> List[SourceFile]:
        files: List[SourceFile] = []
        for path in self.collect_files(paths):
            text = path.read_text(encoding="utf-8")
            try:
                files.append(SourceFile(path, str(path), text))
            except SyntaxError as exc:
                if errors is None:
                    raise
                errors.append(f"{path}: syntax error: {exc.msg} "
                              f"(line {exc.lineno})")
        return files

    # -- driving -----------------------------------------------------------

    def run(self, paths: Iterable[str]) -> AnalysisResult:
        result = AnalysisResult()
        files = self.load(paths, errors=result.errors)
        result.files_analyzed = len(files)
        for rule in self.rules:
            rule.prepare(files)
        for sf in files:
            for rule in self.rules:
                if not rule.applies_to(sf):
                    continue
                for finding in rule.check(sf):
                    if sf.suppresses(finding):
                        result.suppressed.append(finding)
                    else:
                        result.findings.append(finding)
        result.findings.sort()
        result.suppressed.sort()
        return result
