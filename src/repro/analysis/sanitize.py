"""Runtime borrow sanitizer: trap use-after-release on lent extent refs.

HL011 proves statically that a borrowed :class:`ExtentRef` never
*escapes* the borrowing call; this module enforces the complementary
dynamic contract — a borrow must not be *used* after the lending store
has released the underlying range.  A store releases a range when it is
overwritten (``write``/``write_refs``), discarded, or replaced wholesale
by ``restore``; a ref is also dead once ``write_refs`` adopts it into a
store, because ownership moved with it.

With the sanitizer installed (``REPRO_SANITIZE=borrow`` in the
environment, or :func:`install` from code), every ``read_refs`` on an
:class:`~repro.blockdev.extent.ExtentStore` returns :class:`GuardedRef`
instances registered in a per-store ledger.  Releasing an overlapping
block range poisons the outstanding guards; any later ``view()`` on a
poisoned ref raises :class:`BorrowViolation` with the release reason.
Metadata access (``.nbytes``, ``len()``, ``.buf``) stays open — the data
path legitimately sizes ref lists after handing them over — so only a
read or write of the *bytes* trips the trap.

The hooks live behind :func:`repro.blockdev.datapath.set_sanitizer`, so
the block-device layer never imports this module; with no sanitizer
installed the data path is untouched (one ``None`` check per store
operation).

Deliberately stricter than CPython's garbage collector: an overwritten
extent's old buffer usually stays alive (buffers are never mutated in
place), so stale reads return plausible bytes instead of crashing.  The
sanitizer turns that silent staleness into a hard error at the exact
use site, which is what makes the crash-consistency and extent property
suites meaningful under ``REPRO_SANITIZE=borrow`` in CI.
"""

from __future__ import annotations

import os
import weakref
from typing import List, Mapping, Optional, Sequence

from repro.blockdev import datapath
from repro.blockdev.datapath import Buffer, ExtentRef

__all__ = [
    "ENV_VAR",
    "MODE_BORROW",
    "BorrowSanitizer",
    "BorrowViolation",
    "GuardedRef",
    "current",
    "install",
    "install_from_env",
    "uninstall",
]

ENV_VAR = "REPRO_SANITIZE"
MODE_BORROW = "borrow"


class BorrowViolation(RuntimeError):
    """A borrowed extent range was used after its store released it."""


class _Guard:
    """Shared poison flag between a GuardedRef and its ledger entry."""

    __slots__ = ("poisoned", "reason", "origin")

    def __init__(self, origin: str) -> None:
        self.poisoned = False
        self.reason = ""
        self.origin = origin


class GuardedRef(ExtentRef):
    """An :class:`ExtentRef` whose ``view()`` traps after release."""

    __slots__ = ("_guard", "__weakref__")

    def __init__(self, buf: Buffer, start: int, nbytes: int,
                 guard: _Guard) -> None:
        super().__init__(buf, start, nbytes)
        self._guard = guard

    def view(self):
        if self._guard.poisoned:
            raise BorrowViolation(
                f"use of a released borrow from {self._guard.origin}: "
                f"{self._guard.reason}")
        return super().view()

    def __repr__(self) -> str:
        state = "poisoned" if self._guard.poisoned else "live"
        return f"GuardedRef({state}, {super().__repr__()})"


class BorrowSanitizer:
    """The ledger: which lent refs cover which blocks of which store."""

    def __init__(self) -> None:
        #: store -> [start_blk, end_blk, weakref(ref), guard] entries.
        self._ledger: "weakref.WeakKeyDictionary[object, List[list]]" = \
            weakref.WeakKeyDictionary()
        self.borrows = 0
        self.poisons = 0

    # -- hook points (called by the extent store) ---------------------------

    def on_borrow(self, store, blkno: int,
                  refs: Sequence[ExtentRef]) -> List[ExtentRef]:
        """Wrap freshly lent refs and enter them in the ledger."""
        bs = store.block_size
        entries = self._ledger.setdefault(store, [])
        self._prune(entries)
        out: List[ExtentRef] = []
        cursor = blkno * bs
        for r in refs:
            origin = (f"{type(store).__name__} blocks "
                      f"[{cursor // bs}, {-(-(cursor + r.nbytes) // bs)})")
            guard = _Guard(origin)
            guarded = GuardedRef(r.buf, r.start, r.nbytes, guard)
            entries.append([cursor // bs, -(-(cursor + r.nbytes) // bs),
                            weakref.ref(guarded), guard])
            out.append(guarded)
            cursor += r.nbytes
            self.borrows += 1
        return out

    def on_release(self, store, blkno: int, end: int,
                   reason: str = "overwritten or discarded") -> None:
        """Poison outstanding borrows overlapping [blkno, end)."""
        entries = self._ledger.get(store)
        if not entries:
            return
        keep: List[list] = []
        for entry in entries:
            start_blk, end_blk, ref_w, guard = entry
            if ref_w() is None:
                continue  # the borrow died naturally
            if start_blk < end and end_blk > blkno:
                guard.poisoned = True
                guard.reason = f"blocks [{blkno}, {end}) were {reason}"
                self.poisons += 1
            else:
                keep.append(entry)
        entries[:] = keep

    def on_adopt(self, store, refs: Sequence[ExtentRef]) -> None:
        """Poison refs whose ownership just moved into ``store``."""
        for r in refs:
            guard = getattr(r, "_guard", None)
            if guard is not None and not guard.poisoned:
                guard.poisoned = True
                guard.reason = (f"the ref was adopted by "
                                f"{type(store).__name__}.write_refs "
                                f"(ownership moved)")
                self.poisons += 1

    # -- accounting ---------------------------------------------------------

    def outstanding(self, store) -> int:
        """Live (unpoisoned, still-referenced) borrows of one store."""
        entries = self._ledger.get(store, [])
        self._prune(entries)
        return len(entries)

    @staticmethod
    def _prune(entries: List[list]) -> None:
        entries[:] = [e for e in entries if e[2]() is not None]


# -- installation -------------------------------------------------------------

def install(sanitizer: Optional[BorrowSanitizer] = None) -> BorrowSanitizer:
    """Activate a sanitizer on the data path; returns it."""
    san = sanitizer if sanitizer is not None else BorrowSanitizer()
    datapath.set_sanitizer(san)
    return san


def uninstall() -> Optional[BorrowSanitizer]:
    """Deactivate; returns the sanitizer that was active, if any."""
    return datapath.set_sanitizer(None)


def current() -> Optional[BorrowSanitizer]:
    """The active sanitizer, or None."""
    return datapath.sanitizer()


def install_from_env(
        env: Optional[Mapping[str, str]] = None
) -> Optional[BorrowSanitizer]:
    """Install iff ``REPRO_SANITIZE=borrow`` is set (CI entry point)."""
    source: Mapping[str, str] = env if env is not None else os.environ
    if source.get(ENV_VAR, "").strip().lower() == MODE_BORROW:
        return install()
    return None
